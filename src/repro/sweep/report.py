"""Aggregation and reporting over stored sweep points.

Three pivots over a result store:

* :func:`render_table1` — Table-1-style per-library tables, one block
  per operating point (the paper's single table becomes a family);
* :func:`render_vdd_series` — power-vs-VDD curves, one row per supply
  voltage for each (circuit, library) at fixed other conditions —
  the crossover-curve view the related work compares designs on;
* :func:`render_csv` — a flat dump of every stored point.

Markdown and CSV are supported where tabular; everything is computed
purely from store records, so reports work on partial sweeps.
"""

from __future__ import annotations

import csv
import io
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

from repro.circuits.suite import benchmark_suite
from repro.errors import ExperimentError
from repro.sweep.spec import DEFAULT_LIBRARIES
from repro.sweep.store import flow_result

#: The config fields that define an operating point (everything except
#: the subject / library identity).  seed, state_patterns and the
#: estimator backend are part of the key so points differing only in
#: them never merge into one table as indistinguishable duplicate rows.
POINT_FIELDS = ("vdd", "frequency", "fanout", "n_patterns", "synthesize",
                "seed", "state_patterns", "backend")

#: Flat CSV column order.
CSV_COLUMNS = ("circuit", "library", "vdd", "frequency", "fanout",
               "n_patterns", "state_patterns", "seed", "synthesize",
               "backend", "gate_count", "delay_ps", "pd_uw", "ps_uw",
               "pg_uw", "pt_uw", "edp_1e24js", "task_key")


def _config_field(config: Dict[str, Any], name: str) -> Any:
    """A config field; records stored before ``backend`` existed read
    as the default estimator, mirroring ``ExperimentConfig.from_dict``."""
    if name == "backend":
        return config.get("backend", "bitsim")
    return config[name]


def _point_key(record: Dict[str, Any]) -> Tuple:
    config = record["config"]
    return tuple(_config_field(config, name) for name in POINT_FIELDS)


@lru_cache(maxsize=1)
def _circuit_order() -> Dict[str, int]:
    return {spec.name: index
            for index, spec in enumerate(benchmark_suite())}


_LIBRARY_ORDER = {library: index
                  for index, library in enumerate(DEFAULT_LIBRARIES)}


def _circuit_rank(name: str) -> Tuple[int, str]:
    order = _circuit_order()
    return (order.get(name, len(order)), name)


def _library_rank(key: str) -> Tuple[int, str]:
    return (_LIBRARY_ORDER.get(key, len(_LIBRARY_ORDER)), key)


def _flat_row(record: Dict[str, Any]) -> Dict[str, Any]:
    config = record["config"]
    flow = flow_result(record)
    return {
        "circuit": record["circuit"],
        "library": record["library"],
        "vdd": config["vdd"],
        "frequency": config["frequency"],
        "fanout": config["fanout"],
        "n_patterns": config["n_patterns"],
        "state_patterns": config["state_patterns"],
        "seed": config["seed"],
        "synthesize": config["synthesize"],
        "backend": _config_field(config, "backend"),
        "gate_count": flow.gate_count,
        "delay_ps": flow.delay_ps,
        "pd_uw": flow.pd_uw,
        "ps_uw": flow.ps_uw,
        "pg_uw": flow.pg_w / 1e-6,
        "pt_uw": flow.pt_uw,
        "edp_1e24js": flow.edp_paper_units,
        "task_key": record["task_key"],
    }


def _markdown_table(headers: Sequence[str],
                    rows: Sequence[Sequence[Any]]) -> str:
    lines = ["| " + " | ".join(str(cell) for cell in headers) + " |",
             "|" + "|".join("---:" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _point_title(point: Tuple) -> str:
    (vdd, frequency, fanout, n_patterns, synthesize, seed, _state,
     backend) = point
    synth = "resyn2rs" if synthesize else "no-synthesis"
    suffix = "" if backend == "bitsim" else f", {backend}"
    return (f"VDD={vdd:g} V, f={frequency / 1e9:g} GHz, fanout={fanout}, "
            f"{n_patterns} patterns, {synth}, seed {seed}{suffix}")


def render_table1(records: List[Dict[str, Any]]) -> str:
    """Table-1-style markdown, one block of tables per operating point."""
    if not records:
        raise ExperimentError("result store holds no points to report")
    by_point: Dict[Tuple, List[Dict[str, Any]]] = {}
    for record in records:
        by_point.setdefault(_point_key(record), []).append(record)

    blocks: List[str] = []
    for point in sorted(by_point):
        blocks.append(f"### {_point_title(point)}")
        group = by_point[point]
        libraries = sorted({record["library"] for record in group},
                           key=_library_rank)
        for library in libraries:
            rows_in = sorted(
                (record for record in group
                 if record["library"] == library),
                key=lambda record: _circuit_rank(record["circuit"]))
            headers = ["Circuit", "No.", "Delay(ps)", "PD(uW)",
                       "PS(uW)", "PT(uW)", "EDP(1e-24Js)"]
            rows: List[List[Any]] = []
            flows = [flow_result(record) for record in rows_in]
            for record, flow in zip(rows_in, flows):
                rows.append([record["circuit"], flow.gate_count,
                             f"{flow.delay_ps:.0f}", f"{flow.pd_uw:.2f}",
                             f"{flow.ps_uw:.3f}", f"{flow.pt_uw:.2f}",
                             f"{flow.edp_paper_units:.2f}"])
            if len(flows) > 1:
                count = len(flows)
                rows.append([
                    "Average",
                    round(sum(flow.gate_count for flow in flows) / count),
                    f"{sum(flow.delay_ps for flow in flows) / count:.0f}",
                    f"{sum(flow.pd_uw for flow in flows) / count:.2f}",
                    f"{sum(flow.ps_uw for flow in flows) / count:.3f}",
                    f"{sum(flow.pt_uw for flow in flows) / count:.2f}",
                    f"{sum(flow.edp_paper_units for flow in flows) / count:.2f}",
                ])
            blocks.append(f"**{library}** ({len(flows)} circuits)")
            blocks.append(_markdown_table(headers, rows))
    return "\n\n".join(blocks) + "\n"


def render_vdd_series(records: List[Dict[str, Any]]) -> str:
    """Power-vs-VDD markdown series per (circuit, library, conditions)."""
    if not records:
        raise ExperimentError("result store holds no points to report")
    series: Dict[Tuple, List[Dict[str, Any]]] = {}
    for record in records:
        config = record["config"]
        key = (record["circuit"], record["library"], config["frequency"],
               config["fanout"], config["n_patterns"], config["synthesize"],
               config["seed"], config["state_patterns"],
               _config_field(config, "backend"))
        series.setdefault(key, []).append(record)

    blocks: List[str] = []
    for key in sorted(series, key=lambda key: (
            _circuit_rank(key[0]), _library_rank(key[1]), key[2:])):
        (circuit, library, frequency, fanout, n_patterns, synthesize,
         seed, _state, backend) = key
        group = sorted(series[key],
                       key=lambda record: record["config"]["vdd"])
        synth = "resyn2rs" if synthesize else "no-synthesis"
        suffix = "" if backend == "bitsim" else f", {backend}"
        blocks.append(
            f"### {circuit} on {library} "
            f"(f={frequency / 1e9:g} GHz, fanout={fanout}, "
            f"{n_patterns} patterns, {synth}, seed {seed}{suffix})")
        headers = ["VDD(V)", "PD(uW)", "PS(uW)", "PT(uW)", "EDP(1e-24Js)"]
        rows = []
        for record in group:
            flow = flow_result(record)
            rows.append([f"{record['config']['vdd']:g}",
                         f"{flow.pd_uw:.3f}", f"{flow.ps_uw:.4f}",
                         f"{flow.pt_uw:.3f}",
                         f"{flow.edp_paper_units:.2f}"])
        blocks.append(_markdown_table(headers, rows))
    return "\n\n".join(blocks) + "\n"


def render_csv(records: List[Dict[str, Any]]) -> str:
    """Flat CSV of every stored point (grid-sorted, stable)."""
    rows = sorted((_flat_row(record) for record in records),
                  key=lambda row: (_circuit_rank(row["circuit"]),
                                   _library_rank(row["library"]),
                                   row["vdd"], row["frequency"],
                                   row["fanout"], row["n_patterns"]))
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS,
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
