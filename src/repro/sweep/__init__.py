"""Declarative scenario sweeps over the reproduction pipeline.

The paper evaluates everything at one operating point (VDD = 0.9 V,
1 GHz, fanout 3, 640 K patterns); its claims, though, are curves over
operating conditions.  This package turns the one-shot Table 1
reproduction into a batch workload engine:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`, a declarative grid
  over vdd x frequency x fanout x n_patterns x library x circuit x
  synthesis that expands into content-hash-keyed tasks;
* :mod:`repro.sweep.store` — an append-only JSONL (or SQLite) result
  store keyed by those hashes, so re-running a sweep skips every
  already-computed point (resume for free);
* :mod:`repro.sweep.runner` — sharded execution of the pending tasks
  across processes via :mod:`repro.experiments.parallel`;
* :mod:`repro.sweep.report` — pivots of the stored points into
  Table-1-style tables, power-vs-VDD series and CSV dumps.

Driven from the CLI as ``python -m repro sweep run/report/status/spec``.
"""

from repro.sweep.report import render_csv, render_table1, render_vdd_series
from repro.sweep.runner import SweepRunReport, run_sweep
from repro.sweep.spec import SweepSpec, SweepTask
from repro.sweep.store import (
    JsonlResultStore,
    MemoryResultStore,
    SqliteResultStore,
    open_store,
    sweep_status,
)

__all__ = [
    "SweepSpec",
    "SweepTask",
    "SweepRunReport",
    "run_sweep",
    "JsonlResultStore",
    "MemoryResultStore",
    "SqliteResultStore",
    "open_store",
    "sweep_status",
    "render_csv",
    "render_table1",
    "render_vdd_series",
]
