"""Declarative sweep grids.

A :class:`SweepSpec` names the axes of a scenario grid; ``expand()``
turns it into the full cartesian product of :class:`SweepTask` points
in a documented, deterministic order.  Every task carries a *stable
content hash* over everything that determines its result (circuit,
library, full :class:`~repro.experiments.config.ExperimentConfig`),
reusing the hashing conventions of :mod:`repro.cache` — that key is
what the result store indexes by, so two sweeps that share points
share work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.cache import stable_hash
from repro.circuits.suite import benchmark_suite
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.registry import (
    PAPER_LIBRARIES,
    canonical_circuit,
    canonical_library,
)
from repro.schema import PowerQuery, TASK_SCHEMA_VERSION  # noqa: F401
# TASK_SCHEMA_VERSION now lives in repro.schema (the wire-format
# module); it is re-exported here because sweep code and stores have
# always imported it from this module.

#: Canonical library order (the paper's Table 1 column-block order).
#: Any library registered with :mod:`repro.registry` — key or alias —
#: is a valid ``libraries`` axis value.
DEFAULT_LIBRARIES = PAPER_LIBRARIES


@dataclass(frozen=True)
class SweepTask(PowerQuery):
    """One point of an expanded sweep: a (circuit, library, config) cell.

    A ``SweepTask`` *is* a :class:`repro.schema.PowerQuery` — the grid
    point and the service request are the same triple, hashed the same
    way — under its historical name.  ``task_key`` is a deterministic
    content hash of everything that determines the result, so
    identical points — across specs, runs, machines and the serving
    engine's caches — collide on purpose and are computed once.
    """

    @property
    def task_key(self) -> str:
        return self.query_key


def _axis(values: Union[Sequence, Any], name: str) -> Tuple:
    """Normalize an axis argument to a non-empty tuple."""
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        values = (values,)
    out = tuple(values)
    if not out:
        raise ExperimentError(f"sweep axis {name!r} must not be empty")
    return out


def _dedupe(values: Tuple) -> Tuple:
    """Drop repeated axis values, preserving first-seen order."""
    seen: List = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return tuple(seen)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of operating points and subjects.

    Axes (each a tuple; scalars are accepted and wrapped):

    * ``vdd`` — supply voltages, volts;
    * ``frequency`` — clock frequencies, hertz;
    * ``fanout`` — load fanouts for the Eq. 2-5 conditions;
    * ``n_patterns`` — random-pattern budgets for activity estimation;
    * ``synthesize`` — whether resyn2rs runs before mapping;
    * ``libraries`` — registered library keys or aliases;
    * ``circuits`` — Table 1 benchmark names; empty means all 12.

    Scalars shared by every point: ``seed``, ``state_patterns`` (capped
    at each point's ``n_patterns``, matching
    :meth:`ExperimentConfig.scaled`), the mapper options and the
    estimator ``backend`` (part of every task's content hash, so a
    store never mixes backends).  The default spec is exactly the
    paper's operating point.
    """

    vdd: Tuple[float, ...] = (0.9,)
    frequency: Tuple[float, ...] = (1.0e9,)
    fanout: Tuple[int, ...] = (3,)
    n_patterns: Tuple[int, ...] = (640_000,)
    synthesize: Tuple[bool, ...] = (True,)
    libraries: Tuple[str, ...] = DEFAULT_LIBRARIES
    circuits: Tuple[str, ...] = ()
    seed: int = 2010
    state_patterns: int = 65_536
    mapper_cut_size: int = 5
    mapper_cut_limit: int = 8
    mapper_area_rounds: int = 2
    backend: str = "bitsim"

    def __post_init__(self) -> None:
        for name in ("vdd", "frequency", "fanout", "n_patterns",
                     "synthesize"):
            object.__setattr__(self, name,
                               _dedupe(_axis(getattr(self, name), name)))
        libraries = _dedupe(tuple(
            canonical_library(lib)
            for lib in _axis(self.libraries, "libraries")))
        object.__setattr__(self, "libraries", libraries)
        from repro.registry import available_circuits, is_family_spec
        names = _dedupe(tuple(self.circuits))
        resolved = []
        unknown = []
        for name in names:
            try:
                resolved.append(canonical_circuit(name))
            except ExperimentError:
                # A malformed or unknown family spec carries its own
                # precise diagnostic; plain unknown names aggregate.
                if is_family_spec(name):
                    raise
                unknown.append(name)
        if unknown:
            raise ExperimentError(
                f"unknown circuits: {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(available_circuits())}")
        object.__setattr__(self, "circuits", _dedupe(tuple(resolved)))
        from repro.sim.backends import available_backends
        if self.backend not in available_backends():
            raise ExperimentError(
                f"unknown estimator backend {self.backend!r}; choose "
                f"from {sorted(available_backends())}")
        for name in ("vdd", "frequency"):
            if any(value <= 0 for value in getattr(self, name)):
                raise ExperimentError(f"sweep axis {name!r} must be > 0")
        for name in ("fanout", "n_patterns"):
            if any(value < 1 for value in getattr(self, name)):
                raise ExperimentError(f"sweep axis {name!r} must be >= 1")

    # -- expansion -----------------------------------------------------------

    @property
    def circuit_order(self) -> Tuple[str, ...]:
        """The circuits actually swept.

        An explicit ``circuits`` axis is kept in its given order
        (canonicalized); the empty default means the paper's Table 1
        suite.  Registered user circuits (e.g. BLIF netlists) are
        valid axis values but never join the implicit default.
        """
        if self.circuits:
            return self.circuits
        return tuple(spec.name for spec in benchmark_suite())

    @property
    def points_per_netlist(self) -> int:
        """Operating points sharing one mapped netlist."""
        return (len(self.vdd) * len(self.frequency) * len(self.fanout)
                * len(self.n_patterns))

    def size(self) -> int:
        """Number of tasks ``expand()`` produces."""
        return (len(self.circuit_order) * len(self.synthesize)
                * len(self.libraries) * self.points_per_netlist)

    def config_for(self, vdd: float, frequency: float, fanout: int,
                   n_patterns: int, synthesize: bool) -> ExperimentConfig:
        """The full experiment config of one grid point."""
        return ExperimentConfig(
            vdd=vdd, frequency=frequency, fanout=fanout,
            n_patterns=n_patterns,
            state_patterns=min(self.state_patterns, n_patterns),
            seed=self.seed, synthesize=synthesize,
            mapper_cut_size=self.mapper_cut_size,
            mapper_cut_limit=self.mapper_cut_limit,
            mapper_area_rounds=self.mapper_area_rounds,
            backend=self.backend,
        )

    def expand(self) -> List[SweepTask]:
        """The full grid, in deterministic order.

        Nesting (outermost first): circuit, synthesize, library, vdd,
        frequency, fanout, n_patterns — so all operating points of one
        mapped netlist are consecutive, which is what the runner's
        per-process netlist cache and chunking lean on.
        """
        tasks: List[SweepTask] = []
        for circuit in self.circuit_order:
            for synthesize in self.synthesize:
                for library in self.libraries:
                    for vdd in self.vdd:
                        for frequency in self.frequency:
                            for fanout in self.fanout:
                                for n_patterns in self.n_patterns:
                                    tasks.append(SweepTask(
                                        circuit=circuit, library=library,
                                        config=self.config_for(
                                            vdd, frequency, fanout,
                                            n_patterns, synthesize)))
        return tasks

    @property
    def spec_hash(self) -> str:
        """Content hash of the whole grid definition."""
        return stable_hash({"schema": TASK_SCHEMA_VERSION, "spec": self})

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (axes as lists)."""
        out: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            out[spec_field.name] = list(value) if isinstance(value, tuple) \
                else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Build a spec from a plain dict; rejects unknown keys."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown SweepSpec fields: {', '.join(unknown)}")
        return cls(**{key: tuple(value) if isinstance(value, list) else value
                      for key, value in data.items()})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ExperimentError(f"cannot read sweep spec {path}: {exc}")
        if not isinstance(data, dict):
            raise ExperimentError(f"sweep spec {path} must be a JSON object")
        return cls.from_dict(data)
