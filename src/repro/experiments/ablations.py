"""Ablation studies (experiment A1 in DESIGN.md — not in the paper).

The paper fixes several knobs; these sweeps exercise the design choices
DESIGN.md calls out:

* **supply sweep** — EDP vs VDD for the generalized library (dynamic
  power scales with VDD^2, delay rises as drive collapses, so EDP has
  the classic minimum);
* **polarity-gate capacitance sensitivity** — how the headline 28 %
  library power saving depends on the assumed back-gate coupling of the
  ambipolar devices (our 6 aF is an engineering estimate);
* **fanout sweep** — the paper assumes fanout 3 for characterization;
* **pattern-cache effectiveness** — SPICE solve counts with and without
  the off-current classification.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.devices.parameters import cntfet_32nm
from repro.experiments.parallel import parallel_map
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library
from repro.power.characterize import characterize_library
from repro.power.model import PowerParameters, energy_delay_product
from repro.units import AF


@dataclass(frozen=True)
class SupplyPoint:
    """One VDD point of the supply sweep."""

    vdd: float
    mean_power: float       # W, library mean PT
    fo3_delay: float        # s
    edp: float              # J*s, mean PT and FO3 delay


def _supply_point(vdd: float) -> SupplyPoint:
    """One point of the supply sweep (picklable worker)."""
    from repro.devices.calibrate import fo_delay

    tech = cntfet_32nm().with_vdd(vdd)
    library = generalized_cntfet_library(tech)
    params = PowerParameters(vdd=vdd)
    report = characterize_library(library, params)
    mean_total = report.mean_power().total
    delay = fo_delay(tech)
    return SupplyPoint(
        vdd=vdd,
        mean_power=mean_total,
        fo3_delay=delay,
        edp=energy_delay_product(mean_total, delay, params),
    )


def supply_sweep(vdd_values: List[float] = None,
                 jobs: Optional[int] = 1) -> List[SupplyPoint]:
    """EDP vs supply for the generalized CNTFET library."""
    if vdd_values is None:
        vdd_values = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1]
    return parallel_map(_supply_point, vdd_values, jobs=jobs)


@dataclass(frozen=True)
class PolarityCapPoint:
    """One back-gate-capacitance point of the sensitivity sweep."""

    c_pol_af: float
    total_saving: float     # vs the CMOS library
    dynamic_saving: float


@lru_cache(maxsize=None)
def _parity_subject():
    """The sweep's shared subject graph, built once per process so the
    per-instance compact/cut caches hit across sweep points."""
    from repro.circuits.adders import parity_tree_circuit

    return parity_tree_circuit(32)


def _polarity_point(task: Tuple[float, float, float]) -> PolarityCapPoint:
    """One back-gate-capacitance point (picklable worker)."""
    from repro.sim.estimator import estimate_circuit_power
    from repro.synth.mapper import map_aig

    c_pol_af, cmos_p_total, cmos_p_dynamic = task
    aig = _parity_subject()
    base = cntfet_32nm()
    nmos = replace(base.nmos, c_pol=c_pol_af * AF)
    tech = replace(base, nmos=nmos, pmos=nmos.as_polarity("p"))
    library = generalized_cntfet_library(tech)
    netlist = map_aig(aig, library)
    report = estimate_circuit_power(netlist, n_patterns=8192)
    return PolarityCapPoint(
        c_pol_af=c_pol_af,
        total_saving=1.0 - report.p_total / cmos_p_total,
        dynamic_saving=1.0 - report.p_dynamic / cmos_p_dynamic,
    )


def polarity_cap_sensitivity(
        c_pol_values_af: List[float] = None,
        jobs: Optional[int] = 1) -> List[PolarityCapPoint]:
    """Mapped-circuit power savings vs the polarity-gate capacitance.

    Transmission-gate inputs load one polarity gate each.  At the
    *library* characterization level the paper's loading convention
    (fanout x inverter input capacitance) hides that term, so the
    honest sensitivity experiment is at the circuit level: an XOR-rich
    benchmark (a 32-bit parity tree, where nearly every net drives TG
    pins) is mapped on the generalized library built from each back-gate
    assumption and compared against the CMOS mapping.
    """
    from repro.sim.estimator import estimate_circuit_power
    from repro.synth.mapper import map_aig

    if c_pol_values_af is None:
        c_pol_values_af = [0.0, 3.0, 6.0, 12.0, 18.0]
    aig = _parity_subject()
    cmos_netlist = map_aig(aig, cmos_library())
    cmos_report = estimate_circuit_power(cmos_netlist, n_patterns=8192)
    tasks = [(c_pol_af, cmos_report.p_total, cmos_report.p_dynamic)
             for c_pol_af in c_pol_values_af]
    return parallel_map(_polarity_point, tasks, jobs=jobs)


@dataclass(frozen=True)
class FanoutPoint:
    """One fanout point of the loading sweep."""

    fanout: int
    cntfet_mean_power: float
    cmos_mean_power: float

    @property
    def saving(self) -> float:
        return 1.0 - self.cntfet_mean_power / self.cmos_mean_power


def _fanout_point(fanout: int) -> FanoutPoint:
    """One fanout point (picklable worker)."""
    glib = generalized_cntfet_library()
    mlib = cmos_library()
    params = PowerParameters(fanout=fanout)
    cnt = characterize_library(glib, params)
    cmos = characterize_library(mlib, params)
    common = [n for n in cnt.cells if n in cmos.cells]
    return FanoutPoint(
        fanout=fanout,
        cntfet_mean_power=cnt.subset(common).mean_power().total,
        cmos_mean_power=cmos.subset(common).mean_power().total,
    )


def fanout_sweep(fanouts: List[int] = None,
                 jobs: Optional[int] = 1) -> List[FanoutPoint]:
    """Library power saving vs the assumed characterization fanout."""
    if fanouts is None:
        fanouts = [1, 2, 3, 4, 6]
    return parallel_map(_fanout_point, fanouts, jobs=jobs)


@dataclass(frozen=True)
class CacheEffectiveness:
    """Pattern-classification payoff (Fig. 5's computational claim)."""

    cell_vector_pairs: int    # naive simulation count
    distinct_patterns: int    # classified simulation count

    @property
    def reduction(self) -> float:
        return self.cell_vector_pairs / max(1, self.distinct_patterns)


def pattern_cache_effectiveness() -> CacheEffectiveness:
    """Count naive vs classified simulations for the 46-cell library."""
    library = generalized_cntfet_library()
    report = characterize_library(library)
    pairs = sum(1 << cell.n_inputs for cell in library)
    return CacheEffectiveness(
        cell_vector_pairs=pairs,
        distinct_patterns=report.distinct_patterns,
    )
