"""Reproduction harnesses for every table and figure of the paper.

* :mod:`repro.experiments.table1` — Table 1 (12 circuits x 3 libraries);
* :mod:`repro.experiments.library_power` — the Section 4 gate-level
  results (the 46-cell characterization and CNTFET-vs-CMOS comparison);
* :mod:`repro.experiments.figures` — Fig. 2 (transmission gate), Fig. 4
  (pattern leakage) and Fig. 5 (flow statistics) demonstrations;
* :mod:`repro.experiments.flow` — the per-circuit synth/map/estimate
  pipeline shared by all of the above.
"""

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import CircuitFlowResult, run_circuit_flow
from repro.experiments.table1 import Table1Result, reproduce_table1
from repro.experiments.library_power import (
    LibraryStudyResult,
    reproduce_library_study,
)
from repro.experiments.figures import (
    TransmissionGateResult,
    reproduce_fig2_transmission,
    PatternLeakageResult,
    reproduce_fig4_patterns,
    FlowStatsResult,
    reproduce_fig5_flow,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_CONFIG",
    "CircuitFlowResult",
    "run_circuit_flow",
    "Table1Result",
    "reproduce_table1",
    "LibraryStudyResult",
    "reproduce_library_study",
    "TransmissionGateResult",
    "reproduce_fig2_transmission",
    "PatternLeakageResult",
    "reproduce_fig4_patterns",
    "FlowStatsResult",
    "reproduce_fig5_flow",
]
