"""Figure reproductions: Fig. 2, Fig. 4 and Fig. 5.

Fig. 1 (device polarity configuration) and Fig. 3 (gate schematics) are
structural and covered by the device/gate unit tests; the three
figures here have quantitative content:

* **Fig. 2** — a transmission gate in any passing configuration pulls
  its output to the full rail, while a single pass transistor degrades
  the passed 1 by a threshold drop.
* **Fig. 4** — parallel off transistors ([0 0 0] on a NOR3) leak more
  than 3x the series stack ([1 1 1]).
* **Fig. 5** — the two-step characterization flow touches only a few
  dozen distinct patterns instead of one circuit simulation per
  (cell, input vector) pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.devices.ambipolar import AmbipolarCNTFET
from repro.devices.parameters import CNTFET_32NM, TechnologyParams
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library
from repro.power.characterize import characterize_library
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import stage_patterns
from repro.spice.netlist import Circuit, GROUND
from repro.spice.transient import transient
from repro.units import PS, to_nanoamperes


@dataclass(frozen=True)
class TransmissionGateResult:
    """Fig. 2: good vs bad transmission of a logic 1 and a logic 0."""

    vdd: float
    tg_pass_one: float       # TG output when passing VDD
    tg_pass_zero: float      # TG output when passing 0
    nfet_pass_one: float     # single n-device passing VDD (degraded)
    pfet_pass_zero: float    # single p-device passing 0 (degraded)

    @property
    def tg_degradation(self) -> float:
        """Worst rail gap of the transmission gate (V)."""
        return max(self.vdd - self.tg_pass_one, self.tg_pass_zero)

    @property
    def single_device_degradation(self) -> float:
        """Worst rail gap of the single pass device (V)."""
        return max(self.vdd - self.nfet_pass_one, self.pfet_pass_zero)

    def render(self) -> str:
        return "\n".join([
            "== Fig. 2: transmission-gate signal integrity ==",
            f"TG passing 1:   {self.tg_pass_one:.3f} V of {self.vdd} V",
            f"TG passing 0:   {self.tg_pass_zero:.3f} V",
            f"n-FET passing 1: {self.nfet_pass_one:.3f} V "
            f"(threshold drop: {self.vdd - self.nfet_pass_one:.3f} V)",
            f"p-FET passing 0: {self.pfet_pass_zero:.3f} V",
            f"TG worst degradation: {self.tg_degradation * 1000:.1f} mV; "
            f"single device: {self.single_device_degradation * 1000:.1f} mV",
        ])


def _pass_experiment(tech: TechnologyParams, use_tg: bool,
                     drive_high: bool) -> float:
    """Final output voltage when passing a rail through a switch."""
    vdd = tech.vdd
    circuit = Circuit("fig2")
    circuit.add_vsource("vdd", "vdd", GROUND, vdd)
    source_net = "vdd" if drive_high else GROUND
    device = AmbipolarCNTFET(tech.nmos)
    if use_tg:
        # Passing pair: n device with gate high, p device with gate low.
        circuit.add_mosfet("mn", source_net, "vdd", "out", tech.nmos)
        circuit.add_mosfet("mp", source_net, GROUND, "out", tech.pmos)
    else:
        if drive_high:
            circuit.add_mosfet("mn", source_net, "vdd", "out", tech.nmos)
        else:
            circuit.add_mosfet("mp", source_net, GROUND, "out", tech.pmos)
    del device
    circuit.add_capacitor("cl", "out", GROUND, 200e-18)
    initial = {"out": 0.0 if drive_high else vdd, "vdd": vdd}
    result = transient(circuit, stop_time=2000 * PS, step=2 * PS,
                       initial=initial)
    return result.final_voltage("out")


def reproduce_fig2_transmission(
        tech: TechnologyParams = CNTFET_32NM) -> TransmissionGateResult:
    """Reproduce the Fig. 2 good/bad transmission comparison."""
    return TransmissionGateResult(
        vdd=tech.vdd,
        tg_pass_one=_pass_experiment(tech, use_tg=True, drive_high=True),
        tg_pass_zero=_pass_experiment(tech, use_tg=True, drive_high=False),
        nfet_pass_one=_pass_experiment(tech, use_tg=False, drive_high=True),
        pfet_pass_zero=_pass_experiment(tech, use_tg=False, drive_high=False),
    )


@dataclass(frozen=True)
class PatternLeakageResult:
    """Fig. 4: NOR3 leakage for the all-zeros vs all-ones vectors."""

    parallel_pattern: str
    series_pattern: str
    parallel_current: float
    series_current: float
    single_device_current: float

    @property
    def ratio(self) -> float:
        """Parallel / series leakage (paper: more than 3x)."""
        return self.parallel_current / self.series_current

    def render(self) -> str:
        return "\n".join([
            "== Fig. 4: input-vector dependence of leakage (NOR3) ==",
            f"[0 0 0] off network {self.parallel_pattern}: "
            f"{to_nanoamperes(self.parallel_current):.3f} nA "
            f"(~3 x Ileak = {to_nanoamperes(3 * self.single_device_current):.3f} nA)",
            f"[1 1 1] off network {self.series_pattern}: "
            f"{to_nanoamperes(self.series_current):.3f} nA (< Ileak = "
            f"{to_nanoamperes(self.single_device_current):.3f} nA)",
            f"ratio: {self.ratio:.1f}x (paper: more than 3x)",
        ])


def reproduce_fig4_patterns(
        library=None) -> PatternLeakageResult:
    """Reproduce the Fig. 4 parallel-vs-series leakage comparison."""
    if library is None:
        library = cmos_library()
    nor3 = library.cell("NOR3")
    simulator = PatternSimulator(library.tech)
    parallel = stage_patterns(nor3, (False, False, False))[0]
    series = stage_patterns(nor3, (True, True, True))[0]
    single = stage_patterns(library.cell("INV"), (False,))[0]
    return PatternLeakageResult(
        parallel_pattern=parallel.key,
        series_pattern=series.key,
        parallel_current=simulator.off_current(parallel),
        series_current=simulator.off_current(series),
        single_device_current=simulator.off_current(single),
    )


@dataclass(frozen=True)
class FlowStatsResult:
    """Fig. 5: cost of the two-step characterization flow."""

    library: str
    n_cells: int
    n_cell_vectors: int       # naive: one SPICE run per (cell, vector)
    distinct_patterns: int    # actual SPICE runs needed
    characterization_seconds: float

    @property
    def simulation_savings(self) -> float:
        """Naive / classified simulation count."""
        return self.n_cell_vectors / max(1, self.distinct_patterns)

    def render(self) -> str:
        return "\n".join([
            "== Fig. 5: characterization flow statistics ==",
            f"library: {self.library} ({self.n_cells} cells)",
            f"(cell, input vector) pairs: {self.n_cell_vectors}",
            f"distinct Ioff patterns simulated: {self.distinct_patterns} "
            f"(paper: 26)",
            f"simulation count reduction: {self.simulation_savings:.0f}x",
            f"characterization wall time: "
            f"{self.characterization_seconds:.2f} s",
        ])


def reproduce_fig5_flow(
        config: ExperimentConfig = PAPER_CONFIG) -> FlowStatsResult:
    """Run the Fig. 5 flow on the 46-cell library and collect statistics."""
    library = generalized_cntfet_library()
    start = time.perf_counter()
    report = characterize_library(library, config.power_parameters)
    elapsed = time.perf_counter() - start
    n_vectors = sum(1 << cell.n_inputs for cell in library)
    return FlowStatsResult(
        library=library.name,
        n_cells=len(library),
        n_cell_vectors=n_vectors,
        distinct_patterns=report.distinct_patterns,
        characterization_seconds=elapsed,
    )
