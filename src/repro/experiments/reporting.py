"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render a monospace table with right-aligned columns."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).rjust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_ratio(reference: float, value: float) -> str:
    """'7.1x' style improvement ratio (reference / value)."""
    if value == 0:
        return "inf"
    return f"{reference / value:.1f}x"


def format_saving(reference: float, value: float) -> str:
    """'57.1%' style saving of value relative to reference."""
    if reference == 0:
        return "n/a"
    return f"{(1.0 - value / reference) * 100.0:.1f}%"
