"""Process-parallel experiment execution.

The experiment grid (circuit x library cells, sweep points) is
embarrassingly parallel: every task is a pure function of picklable
inputs with a deterministic seed, so fanning it out over a
``ProcessPoolExecutor`` must produce bit-identical results to the
serial loop — the only thing that changes is wall-clock time.  This
module centralizes that fan-out so every harness exposes the same
``jobs`` knob with the same semantics:

* ``jobs=1`` (default): plain serial ``map`` in the calling process;
* ``jobs=N``: a pool of N worker processes;
* ``jobs=0`` or ``None``: one worker per CPU.

Workers warm their own in-process caches (synthesized benchmarks,
libraries, match tables); the persistent characterization cache
(:mod:`repro.cache`) is shared through the filesystem, so workers also
skip any SPICE solve another process already did.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(func: Callable[[_T], _R], items: Iterable[_T],
                 jobs: Optional[int] = 1,
                 chunksize: int = 1) -> List[_R]:
    """Map ``func`` over ``items``, optionally across processes.

    Results come back in input order regardless of completion order,
    so callers are deterministic for any worker count.  ``chunksize``
    groups adjacent tasks onto one worker — order related tasks
    consecutively (e.g. the three libraries of one circuit) and chunk
    by that group size to let per-process caches amortize shared work.
    """
    work: Sequence[_T] = list(items)
    n_workers = min(resolve_jobs(jobs), max(1, len(work)))
    if n_workers <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(func, work, chunksize=max(1, chunksize)))
