"""Process-parallel experiment execution.

The experiment grid (circuit x library cells, sweep points) is
embarrassingly parallel: every task is a pure function of picklable
inputs with a deterministic seed, so fanning it out over a
``ProcessPoolExecutor`` must produce bit-identical results to the
serial loop — the only thing that changes is wall-clock time.  This
module centralizes that fan-out so every harness exposes the same
``jobs`` knob with the same semantics:

* ``jobs=1`` (default): plain serial ``map`` in the calling process;
* ``jobs=N``: a pool of N worker processes, clamped to the CPU count
  (forking more workers than CPUs only adds scheduling overhead — on
  a 1-CPU machine ``jobs=2`` used to run *slower* than serial);
* ``jobs=0`` or ``None``: one worker per CPU.

Workers warm their own in-process caches (synthesized benchmarks,
libraries, match tables); the persistent characterization cache
(:mod:`repro.cache`) is shared through the filesystem, so workers also
skip any SPICE solve another process already did.

**Crash tolerance**: a worker process dying (OOM kill, segfault,
``os._exit``) breaks the whole ``ProcessPoolExecutor``, and every task
that was in flight is a *suspect* — the pool cannot say which task
killed the worker.  :func:`parallel_map_stream` therefore retries: the
unfinished tasks are resubmitted to a fresh pool (one task per chunk,
to sharpen attribution) and each crash round bumps a per-task suspect
count.  A task whose count exceeds ``crash_retries`` gets one final
attempt in an *isolated single-worker pool*: success clears it (it was
an innocent bystander of someone else's crash), another crash is
definitive — the task is poisoned.  By default a poisoned task raises
:class:`~repro.errors.WorkerCrashError`; sweep runs instead pass
``on_poison`` to quarantine the task in the result store and keep the
rest of the grid running.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import WorkerCrashError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Default number of crash rounds a task may be a suspect of before it
#: is isolated (and then poisoned if it crashes alone).
DEFAULT_CRASH_RETRIES = 2


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    The result is clamped to ``os.cpu_count()``: requesting more
    workers than CPUs cannot make the (CPU-bound, GIL-free) experiment
    grid faster and measurably slows it down, so the effective value
    is what harnesses should record in their reports.
    """
    cpus = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cpus
    return max(1, min(jobs, cpus))


def parallel_map(func: Callable[[_T], _R], items: Iterable[_T],
                 jobs: Optional[int] = 1,
                 chunksize: int = 1) -> List[_R]:
    """Map ``func`` over ``items``, optionally across processes.

    Results come back in input order regardless of completion order,
    so callers are deterministic for any worker count.  ``chunksize``
    groups adjacent tasks onto one worker — order related tasks
    consecutively (e.g. the three libraries of one circuit) and chunk
    by that group size to let per-process caches amortize shared work.
    """
    return parallel_map_stream(func, items, jobs=jobs, chunksize=chunksize)


def _run_chunk(func: Callable[[_T], _R], chunk: List[_T]) -> List[_R]:
    """Worker-side helper: map ``func`` over one chunk of tasks."""
    return [func(item) for item in chunk]


def _worker_init(blif_snapshot) -> None:
    """Worker initializer: replay runtime circuit registrations.

    Under the ``spawn``/``forkserver`` start methods workers re-import
    the registry and would only know the built-in circuits; replaying
    the parent's BLIF registrations keeps ``--blif`` netlists buildable
    for any ``jobs`` value (under ``fork`` this is a no-op re-replace
    of what the worker already inherited).
    """
    if blif_snapshot:
        from repro import registry

        registry.restore_blif_registrations(blif_snapshot)


def _run_isolated(func: Callable[[_T], _R], item: _T,
                  blif_snapshot) -> _R:
    """One task in its own fresh single-worker pool.

    The definitive test for a crash suspect: nothing else shares the
    worker, so a broken pool here means *this* task kills workers.
    Raises :class:`WorkerCrashError` in that case.
    """
    with ProcessPoolExecutor(
            max_workers=1, initializer=_worker_init,
            initargs=(blif_snapshot,)) as pool:
        future = pool.submit(_run_chunk, func, [item])
        try:
            return future.result()[0]
        except BrokenExecutor:
            raise WorkerCrashError(
                "task crashed its worker even when run in isolation"
            ) from None


def parallel_map_stream(func: Callable[[_T], _R], items: Iterable[_T],
                        jobs: Optional[int] = 1,
                        chunksize: int = 1,
                        callback: Optional[Callable[[_T, _R], None]] = None,
                        crash_retries: int = DEFAULT_CRASH_RETRIES,
                        on_retry: Optional[Callable[[_T], None]] = None,
                        on_poison: Optional[
                            Callable[[_T, WorkerCrashError], None]] = None
                        ) -> List[_R]:
    """:func:`parallel_map` that streams results as they land.

    The returned list is always in input order; ``callback(item,
    result)`` fires in the calling process as soon as each result
    exists — serially that is right after each task in order, in a
    pool it is *completion* order (chunks are submitted individually
    and drained with ``as_completed``, so a slow head-of-line chunk
    cannot delay checkpointing of everything finishing behind it).
    Sweep runs use this to persist every finished point into the
    result store: an interrupted run keeps all completed work, not
    just the prefix before the slowest chunk.

    **Crash tolerance** (pools only; a serial run shares the caller's
    process, where a crash is not survivable): tasks unfinished when a
    worker death breaks the pool are retried on a fresh pool, up to
    ``crash_retries`` suspect rounds each, then isolated (see module
    docstring).  ``on_retry(item)`` fires per resubmitted task;
    ``on_poison(item, error)`` fires for a task that crashes in
    isolation, and its result slot stays ``None`` — without
    ``on_poison`` the :class:`WorkerCrashError` propagates instead.
    An exception *raised* by a task (as opposed to a killed worker)
    propagates immediately, exactly as before.
    """
    work: Sequence[_T] = list(items)
    n_workers = min(resolve_jobs(jobs), max(1, len(work)))
    if n_workers <= 1:
        results: List[_R] = []
        for item in work:
            result = func(item)
            results.append(result)
            if callback is not None:
                callback(item, result)
        return results
    chunksize = max(1, chunksize)
    from repro import registry

    snapshot = registry.blif_registrations()
    slots: List[Optional[_R]] = [None] * len(work)
    finished = [False] * len(work)
    crash_counts = [0] * len(work)
    pending = list(range(len(work)))
    first_round = True
    while pending:
        # Retry rounds resubmit one task per chunk: each further crash
        # then suspects as few innocents as possible.
        round_chunk = chunksize if first_round else 1
        chunks = [pending[start:start + round_chunk]
                  for start in range(0, len(pending), round_chunk)]
        crashed = False
        with ProcessPoolExecutor(
                max_workers=min(n_workers, len(chunks)),
                initializer=_worker_init,
                initargs=(snapshot,)) as pool:
            futures = {pool.submit(_run_chunk, func,
                                   [work[i] for i in chunk]): chunk
                       for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    chunk_results = future.result()
                except BrokenExecutor:
                    # A worker died; every task of this chunk was (or
                    # may have been) in flight on it.  Keep draining —
                    # chunks that finished before the break are good.
                    crashed = True
                    continue
                for index, result in zip(chunk, chunk_results):
                    slots[index] = result
                    finished[index] = True
                    if callback is not None:
                        callback(work[index], result)
        if not crashed:
            break
        unfinished = [i for i in pending if not finished[i]]
        retry: List[int] = []
        for index in unfinished:
            crash_counts[index] += 1
            if crash_counts[index] <= crash_retries:
                retry.append(index)
                if on_retry is not None:
                    on_retry(work[index])
                continue
            # A repeat suspect: give it one definitive isolated run.
            try:
                result = _run_isolated(func, work[index], snapshot)
            except WorkerCrashError as exc:
                error = WorkerCrashError(
                    f"task crashed workers in {crash_counts[index]} "
                    f"round(s) and again in isolation; quarantined")
                if on_poison is None:
                    raise error from exc
                on_poison(work[index], error)
                finished[index] = True  # resolved: poisoned
                continue
            slots[index] = result
            finished[index] = True
            if callback is not None:
                callback(work[index], result)
        pending = retry
        first_round = False
    return slots  # type: ignore[return-value]
