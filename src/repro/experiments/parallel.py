"""Process-parallel experiment execution.

The experiment grid (circuit x library cells, sweep points) is
embarrassingly parallel: every task is a pure function of picklable
inputs with a deterministic seed, so fanning it out over a
``ProcessPoolExecutor`` must produce bit-identical results to the
serial loop — the only thing that changes is wall-clock time.  This
module centralizes that fan-out so every harness exposes the same
``jobs`` knob with the same semantics:

* ``jobs=1`` (default): plain serial ``map`` in the calling process;
* ``jobs=N``: a pool of N worker processes, clamped to the CPU count
  (forking more workers than CPUs only adds scheduling overhead — on
  a 1-CPU machine ``jobs=2`` used to run *slower* than serial);
* ``jobs=0`` or ``None``: one worker per CPU.

Workers warm their own in-process caches (synthesized benchmarks,
libraries, match tables); the persistent characterization cache
(:mod:`repro.cache`) is shared through the filesystem, so workers also
skip any SPICE solve another process already did.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    The result is clamped to ``os.cpu_count()``: requesting more
    workers than CPUs cannot make the (CPU-bound, GIL-free) experiment
    grid faster and measurably slows it down, so the effective value
    is what harnesses should record in their reports.
    """
    cpus = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cpus
    return max(1, min(jobs, cpus))


def parallel_map(func: Callable[[_T], _R], items: Iterable[_T],
                 jobs: Optional[int] = 1,
                 chunksize: int = 1) -> List[_R]:
    """Map ``func`` over ``items``, optionally across processes.

    Results come back in input order regardless of completion order,
    so callers are deterministic for any worker count.  ``chunksize``
    groups adjacent tasks onto one worker — order related tasks
    consecutively (e.g. the three libraries of one circuit) and chunk
    by that group size to let per-process caches amortize shared work.
    """
    return parallel_map_stream(func, items, jobs=jobs, chunksize=chunksize)


def _run_chunk(func: Callable[[_T], _R], chunk: List[_T]) -> List[_R]:
    """Worker-side helper: map ``func`` over one chunk of tasks."""
    return [func(item) for item in chunk]


def _worker_init(blif_snapshot) -> None:
    """Worker initializer: replay runtime circuit registrations.

    Under the ``spawn``/``forkserver`` start methods workers re-import
    the registry and would only know the built-in circuits; replaying
    the parent's BLIF registrations keeps ``--blif`` netlists buildable
    for any ``jobs`` value (under ``fork`` this is a no-op re-replace
    of what the worker already inherited).
    """
    if blif_snapshot:
        from repro import registry

        registry.restore_blif_registrations(blif_snapshot)


def parallel_map_stream(func: Callable[[_T], _R], items: Iterable[_T],
                        jobs: Optional[int] = 1,
                        chunksize: int = 1,
                        callback: Optional[Callable[[_T, _R], None]] = None
                        ) -> List[_R]:
    """:func:`parallel_map` that streams results as they land.

    The returned list is always in input order; ``callback(item,
    result)`` fires in the calling process as soon as each result
    exists — serially that is right after each task in order, in a
    pool it is *completion* order (chunks are submitted individually
    and drained with ``as_completed``, so a slow head-of-line chunk
    cannot delay checkpointing of everything finishing behind it).
    Sweep runs use this to persist every finished point into the
    result store: an interrupted run keeps all completed work, not
    just the prefix before the slowest chunk.
    """
    work: Sequence[_T] = list(items)
    n_workers = min(resolve_jobs(jobs), max(1, len(work)))
    if n_workers <= 1:
        results: List[_R] = []
        for item in work:
            result = func(item)
            results.append(result)
            if callback is not None:
                callback(item, result)
        return results
    chunksize = max(1, chunksize)
    chunks = [list(work[start:start + chunksize])
              for start in range(0, len(work), chunksize)]
    slots: List[Optional[_R]] = [None] * len(work)
    from repro import registry
    with ProcessPoolExecutor(
            max_workers=n_workers, initializer=_worker_init,
            initargs=(registry.blif_registrations(),)) as pool:
        futures = {}
        for index, chunk in enumerate(chunks):
            future = pool.submit(_run_chunk, func, chunk)
            futures[future] = index
        for future in as_completed(futures):
            index = futures[future]
            start = index * chunksize
            for offset, result in enumerate(future.result()):
                slots[start + offset] = result
                if callback is not None:
                    callback(work[start + offset], result)
    return slots  # type: ignore[return-value]
