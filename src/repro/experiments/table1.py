"""Table 1 reproduction: logic synthesis, mapping and power for 12
benchmarks on the three libraries.

Each benchmark is synthesized once with resyn2rs, mapped onto the
generalized-CNTFET, conventional-CNTFET and CMOS libraries, and power-
estimated with random patterns.  The result object carries per-cell
data, the column averages and the improvement rows exactly as the paper
formats them, plus the paper's own numbers for side-by-side reporting.

:func:`reproduce_table1` is a thin wrapper over the
:class:`repro.api.Session` front door, kept for its established
signature; the grid orchestration itself lives in ``Session.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.suite import (
    CMOS,
    CONVENTIONAL,
    GENERALIZED,
    PAPER_AVERAGES,
)
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import (
    CircuitFlowResult,
    estimate_mapped,
    map_subject,
    synthesized_benchmark,
)
from repro.experiments.reporting import format_ratio, format_saving, render_table
from repro.registry import cached_library

LIBRARY_ORDER = [GENERALIZED, CONVENTIONAL, CMOS]


@dataclass
class Table1Result:
    """All data of the reproduced Table 1."""

    config: ExperimentConfig
    #: results[benchmark][library_key]
    results: Dict[str, Dict[str, CircuitFlowResult]] = field(
        default_factory=dict)
    benchmark_order: List[str] = field(default_factory=list)
    #: Library columns, in presentation order (the paper's three by
    #: default; sessions over other registrations set their own).
    library_order: List[str] = field(
        default_factory=lambda: list(LIBRARY_ORDER))

    # -- aggregates ----------------------------------------------------------

    def averages(self, library: str) -> CircuitFlowResult:
        """Column averages for one library (the paper's Average row)."""
        rows = [self.results[name][library] for name in self.benchmark_order]
        count = len(rows)
        return CircuitFlowResult(
            circuit="Average",
            library=library,
            gate_count=round(sum(r.gate_count for r in rows) / count),
            delay_s=sum(r.delay_s for r in rows) / count,
            pd_w=sum(r.pd_w for r in rows) / count,
            ps_w=sum(r.ps_w for r in rows) / count,
            pg_w=sum(r.pg_w for r in rows) / count,
            pt_w=sum(r.pt_w for r in rows) / count,
            edp_js=sum(r.edp_js for r in rows) / count,
        )

    def improvement_vs_cmos(self, library: str) -> Dict[str, str]:
        """The paper's "Improvement vs. CMOS" row for one library.

        Raises :class:`ExperimentError` when the result was computed
        without the CMOS baseline column.
        """
        if CMOS not in self.library_order:
            from repro.errors import ExperimentError
            raise ExperimentError(
                "improvement_vs_cmos needs the 'cmos' library column; "
                f"this table was computed over {self.library_order}")
        ours = self.averages(library)
        cmos = self.averages(CMOS)
        return {
            "gates": format_saving(cmos.gate_count, ours.gate_count),
            "delay": format_ratio(cmos.delay_s, ours.delay_s),
            "pd": format_saving(cmos.pd_w, ours.pd_w),
            "ps": format_saving(cmos.ps_w, ours.ps_w),
            "pt": format_saving(cmos.pt_w, ours.pt_w),
            "edp": format_ratio(cmos.edp_js, ours.edp_js),
        }

    # -- rendering -------------------------------------------------------------

    def render(self, include_paper: bool = True) -> str:
        """Monospace rendition of the reproduced table."""
        blocks: List[str] = []
        for library in self.library_order:
            headers = ["Circuit", "No.", "Delay(ps)", "PD(uW)", "PS(uW)",
                       "PT(uW)", "EDP(1e-24Js)"]
            rows = []
            for name in self.benchmark_order:
                r = self.results[name][library]
                rows.append([name, r.gate_count, f"{r.delay_ps:.0f}",
                             f"{r.pd_uw:.2f}", f"{r.ps_uw:.3f}",
                             f"{r.pt_uw:.2f}", f"{r.edp_paper_units:.2f}"])
            avg = self.averages(library)
            rows.append(["Average", avg.gate_count, f"{avg.delay_ps:.0f}",
                         f"{avg.pd_uw:.2f}", f"{avg.ps_uw:.3f}",
                         f"{avg.pt_uw:.2f}", f"{avg.edp_paper_units:.2f}"])
            if include_paper and library in PAPER_AVERAGES:
                paper = PAPER_AVERAGES[library]
                rows.append(["(paper avg)", paper.gates,
                             f"{paper.delay_ps:.0f}", f"{paper.pd_uw:.2f}",
                             f"{paper.ps_uw:.3f}", f"{paper.pt_uw:.2f}",
                             f"{paper.edp:.2f}"])
            blocks.append(render_table(headers, rows,
                                       title=f"== {library} =="))
            if library != CMOS and CMOS in self.library_order:
                imp = self.improvement_vs_cmos(library)
                blocks.append(
                    f"Improvement vs CMOS: gates {imp['gates']}, "
                    f"delay {imp['delay']}, PD {imp['pd']}, "
                    f"PS {imp['ps']}, PT {imp['pt']}, EDP {imp['edp']}")
        return "\n\n".join(blocks)


def run_table1_cell(task: Tuple[str, str, ExperimentConfig]
                    ) -> CircuitFlowResult:
    """Run one Table 1 cell: a picklable task to a picklable result.

    ``task`` is ``(circuit, library_key, config)`` — a registered
    circuit name, a registered library key and the experiment config.
    This is the unit of work :meth:`repro.api.Session.table1` fans out
    over worker processes; it is deliberately module-level and
    argument-pure so it pickles under every multiprocessing start
    method.  The reported ``circuit`` / ``library`` are the registry
    keys the task named (not the generator's internal AIG name).
    """
    name, library_key, config = task
    subject = synthesized_benchmark(name, config.synthesize)
    library = cached_library(library_key, config.vdd)
    netlist = map_subject(subject, library, config)
    return estimate_mapped(netlist, config, circuit=name,
                           library=library_key)


def verbose_cell_line(flow: CircuitFlowResult) -> str:
    """One human-readable progress line for a completed Table 1 cell."""
    return (f"{flow.circuit:6s} {flow.library:20s} "
            f"gates={flow.gate_count:5d} delay={flow.delay_ps:7.1f}ps "
            f"PT={flow.pt_uw:8.2f}uW EDP={flow.edp_paper_units:8.2f}")


def reproduce_table1(config: ExperimentConfig = PAPER_CONFIG,
                     benchmarks: Optional[List[str]] = None,
                     verbose: bool = False,
                     jobs: Optional[int] = 1) -> Table1Result:
    """Run the full Table 1 experiment (via :class:`repro.api.Session`).

    Args:
        config: operating point and pattern budget.
        benchmarks: optional subset of Table 1 names (default: all 12).
        verbose: print one line per (circuit, library) — streamed as
            each result lands when running serially, after the grid
            completes when running with worker processes.
        jobs: worker processes for the (circuit x library) grid; 1 runs
            serially in-process, 0/None uses every CPU.  Results are
            bit-identical for any value — tasks carry deterministic
            seeds and come back in grid order.
    """
    from repro.api import Session

    return Session(config, jobs=jobs).table1(benchmarks=benchmarks,
                                             verbose=verbose)
