"""The Section 4 gate-level study (S4-LIB in DESIGN.md).

Characterizes the 46-cell generalized CNTFET library and the CMOS
reference library, and assembles the quantities the paper reports in
prose: inverter input capacitances, the PG/PS fractions, activity
factors, dynamic/static/total power comparisons, and the distinct
off-current pattern count of the classification method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import render_table
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library
from repro.power.characterize import LibraryPowerReport, characterize_library
from repro.power.model import PowerParameters
from repro.power.compare import LibraryComparison, compare_libraries
from repro.units import to_attofarads


@dataclass(frozen=True)
class LibraryStudyResult:
    """Everything the Section 4 narrative quotes."""

    cntfet: LibraryPowerReport
    cmos: LibraryPowerReport
    comparison: LibraryComparison
    cntfet_inverter_cin_af: float   # paper: 36 aF
    cmos_inverter_cin_af: float     # paper: 52 aF
    distinct_patterns: int          # paper: 26

    def render(self) -> str:
        """Readable digest with paper anchors."""
        lines: List[str] = [
            "== Section 4 library study ==",
            f"46-cell generalized library characterized with "
            f"{self.distinct_patterns} distinct Ioff patterns "
            f"(paper: 26)",
            f"inverter input capacitance: CNTFET "
            f"{self.cntfet_inverter_cin_af:.1f} aF vs CMOS "
            f"{self.cmos_inverter_cin_af:.1f} aF (paper: 36 vs 52)",
        ]
        lines.extend(self.comparison.summary_lines())
        headers = ["cell", "inputs", "devices", "alpha", "Cin(aF)",
                   "PD(nW)", "PS(nW)", "PG(nW)", "PT(nW)", "patterns"]
        rows = []
        for name, report in self.cntfet.cells.items():
            rows.append([
                name, report.n_inputs, report.n_devices,
                f"{report.activity:.2f}",
                f"{to_attofarads(report.input_capacitance):.1f}",
                f"{report.power.dynamic * 1e9:.2f}",
                f"{report.power.static * 1e9:.3f}",
                f"{report.power.gate_leak * 1e9:.4f}",
                f"{report.power.total * 1e9:.2f}",
                report.distinct_patterns,
            ])
        lines.append("")
        lines.append(render_table(headers, rows,
                                  title="Generalized CNTFET library (46 cells)"))
        return "\n".join(lines)


def _characterize_study_library(task: Tuple[str, PowerParameters]
                                ) -> LibraryPowerReport:
    """Characterize one of the study's libraries (picklable worker)."""
    key, params = task
    library = (generalized_cntfet_library() if key == "cntfet"
               else cmos_library())
    return characterize_library(library, params)


def reproduce_library_study(
        config: ExperimentConfig = PAPER_CONFIG,
        jobs: Optional[int] = 1) -> LibraryStudyResult:
    """Run the full Section 4 gate-level characterization."""
    params = config.power_parameters
    cntfet_lib = generalized_cntfet_library()
    cmos_lib = cmos_library()
    if jobs == 1:
        # Serial: characterize the same instances queried below rather
        # than rebuilding them inside the worker function.
        cntfet_report = characterize_library(cntfet_lib, params)
        cmos_report = characterize_library(cmos_lib, params)
    else:
        cntfet_report, cmos_report = parallel_map(
            _characterize_study_library,
            [("cntfet", params), ("cmos", params)], jobs=jobs)
    comparison = compare_libraries(cntfet_report, cmos_report)

    cnt_inv = cntfet_lib.inverter()
    cmos_inv = cmos_lib.inverter()
    return LibraryStudyResult(
        cntfet=cntfet_report,
        cmos=cmos_report,
        comparison=comparison,
        cntfet_inverter_cin_af=to_attofarads(
            cntfet_lib.pin_capacitance(cnt_inv.name, cnt_inv.inputs[0])),
        cmos_inverter_cin_af=to_attofarads(
            cmos_lib.pin_capacitance(cmos_inv.name, cmos_inv.inputs[0])),
        distinct_patterns=cntfet_report.distinct_patterns,
    )
