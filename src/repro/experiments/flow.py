"""The per-circuit experiment pipeline: synthesize -> map -> estimate.

This mirrors the paper's methodology exactly: circuits are first
synthesized with the resyn2rs script (library-independent), then mapped
onto genlib-characterized libraries, and finally power is estimated on
the mapped netlists by the config-selected estimator backend (the
paper's random-pattern bitsim by default).

Libraries are resolved through :mod:`repro.registry`
(:func:`repro.registry.build_library` / :func:`~repro.registry.paper_libraries`
replaced the historical ``three_libraries`` / ``cached_libraries``
helpers, whose deprecation shims have been removed).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.gates.library import Library
from repro.power.model import energy_delay_product
from repro.sim.backends import estimate_with_backend
from repro.sim.estimator import CircuitPowerReport
from repro.synth.aig import Aig
from repro.synth.mapper import MappingOptions, map_aig
from repro.synth.netlist import MappedNetlist
from repro.synth.scripts import resyn2rs
from repro import registry


@lru_cache(maxsize=None)
def synthesized_benchmark(name: str, synthesize: bool) -> Aig:
    """Build (and optionally resyn2rs) one circuit, memoized per process.

    Any circuit registered with :func:`repro.registry.register_circuit`
    — the 12 Table 1 benchmarks, user BLIF netlists — resolves here.
    Worker processes touching several (library, operating point) tasks
    of one circuit pay for construction and synthesis once; both are
    deterministic, so every process derives the same subject graph.
    """
    aig = registry.build_circuit(name)
    if not synthesize:
        return aig
    return synthesize_subject(aig, ExperimentConfig(synthesize=True))


@dataclass(frozen=True)
class CircuitFlowResult:
    """One Table 1 cell: a circuit mapped and estimated on one library."""

    circuit: str
    library: str
    gate_count: int
    delay_s: float
    pd_w: float
    ps_w: float
    pg_w: float
    pt_w: float
    edp_js: float

    @property
    def delay_ps(self) -> float:
        return self.delay_s / 1e-12

    @property
    def pd_uw(self) -> float:
        return self.pd_w / 1e-6

    @property
    def ps_uw(self) -> float:
        return self.ps_w / 1e-6

    @property
    def pt_uw(self) -> float:
        return self.pt_w / 1e-6

    @property
    def edp_paper_units(self) -> float:
        """EDP in the paper's 1e-24 J*s unit."""
        return self.edp_js / 1e-24


#: resyn2rs results per subject graph, so mapping one circuit onto
#: several libraries synthesizes once.  Keyed weakly on the AIG with
#: its mutation stamp: a mutated graph re-synthesizes.
_SYNTH_CACHE: "weakref.WeakKeyDictionary[Aig, Tuple[int, Aig]]"
_SYNTH_CACHE = weakref.WeakKeyDictionary()


def synthesize_subject(aig: Aig,
                       config: ExperimentConfig = PAPER_CONFIG) -> Aig:
    """The library-independent synthesis step, cached per circuit."""
    if not config.synthesize:
        return aig
    return aig.cached_derivation(_SYNTH_CACHE, resyn2rs)


def map_subject(subject: Aig, library: Library,
                config: ExperimentConfig = PAPER_CONFIG) -> MappedNetlist:
    """The technology-mapping step with the config's mapper options."""
    options = MappingOptions(
        cut_size=config.mapper_cut_size,
        cut_limit=config.mapper_cut_limit,
        area_rounds=config.mapper_area_rounds,
    )
    return map_aig(subject, library, options)


def flow_from_power_report(report: CircuitPowerReport,
                           config: ExperimentConfig,
                           circuit: Optional[str] = None,
                           library: Optional[str] = None
                           ) -> CircuitFlowResult:
    """The single place a :class:`CircuitPowerReport` becomes a
    :class:`CircuitFlowResult`.

    The Table 1 grid, the per-point and grouped sweep runners and the
    :mod:`repro.serve` engine all finish here, which is what makes
    their results comparable field for field.  ``circuit`` / ``library``
    override the reported names (callers that resolved a registry key
    report the canonical key, not the generator's internal name).
    """
    params = config.power_parameters
    return CircuitFlowResult(
        circuit=circuit if circuit is not None else report.circuit,
        library=library if library is not None else report.library,
        gate_count=report.gate_count,
        delay_s=report.delay,
        pd_w=report.p_dynamic,
        ps_w=report.p_static,
        pg_w=report.p_gate_leak,
        pt_w=report.p_total,
        edp_js=energy_delay_product(report.p_total, report.delay, params),
    )


def estimate_mapped(netlist: MappedNetlist,
                    config: ExperimentConfig = PAPER_CONFIG,
                    circuit: Optional[str] = None,
                    library: Optional[str] = None) -> CircuitFlowResult:
    """Estimate an already-mapped netlist (the tail of the pipeline)."""
    report: CircuitPowerReport = estimate_with_backend(
        netlist, config.power_parameters, config)
    return flow_from_power_report(
        report, config,
        circuit=circuit if circuit is not None else netlist.name,
        library=library if library is not None else netlist.library.name)


def run_circuit_flow(aig: Aig, library: Library,
                     config: ExperimentConfig = PAPER_CONFIG,
                     presynthesized: bool = False,
                     netlist: Optional[MappedNetlist] = None
                     ) -> CircuitFlowResult:
    """Run the full pipeline for one circuit on one library.

    ``netlist`` short-circuits the synthesize+map stages with an
    already-mapped circuit — mapping is deterministic, so passing the
    cached netlist of the same (subject, library, mapper options) is
    bit-identical to remapping.  Sweeps over operating points lean on
    this: the netlist is fixed while VDD / frequency / fanout vary.

    Estimation runs on the backend named by ``config.backend``
    (:mod:`repro.sim.backends`); the default ``"bitsim"`` is the
    paper's random-pattern method.
    """
    subject = aig
    if netlist is None:
        if config.synthesize and not presynthesized:
            subject = synthesize_subject(aig, config)
        netlist = map_subject(subject, library, config)
    return estimate_mapped(netlist, config, circuit=aig.name,
                           library=library.name)
