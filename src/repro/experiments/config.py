"""Experiment configuration.

The paper's operating point (Section 4): VDD = 0.9 V, f = 1 GHz, fanout
of 3 for library characterization, 640 K random patterns for circuit
power estimation.  ``PAPER_CONFIG`` pins those values; tests and
benchmark harnesses use scaled-down pattern counts for speed, which is
explicitly recorded in their results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict

from repro.errors import ExperimentError
from repro.power.model import PowerParameters


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a reproduction run needs to be deterministic."""

    vdd: float = 0.9
    frequency: float = 1.0e9
    fanout: int = 3
    n_patterns: int = 640_000
    state_patterns: int = 65_536
    seed: int = 2010
    synthesize: bool = True       # run resyn2rs before mapping
    mapper_cut_size: int = 5
    mapper_cut_limit: int = 8
    mapper_area_rounds: int = 2

    @property
    def power_parameters(self) -> PowerParameters:
        """The Eq. 2-5 operating conditions."""
        return PowerParameters(vdd=self.vdd, frequency=self.frequency,
                               fanout=self.fanout)

    def scaled(self, n_patterns: int) -> "ExperimentConfig":
        """Copy with a different pattern budget (for fast test runs)."""
        return replace(self, n_patterns=n_patterns,
                       state_patterns=min(self.state_patterns, n_patterns))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (sweep stores persist this with every point)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown ExperimentConfig fields: {', '.join(unknown)}")
        return cls(**data)


#: The paper's configuration.
PAPER_CONFIG = ExperimentConfig()

#: A fast configuration for unit tests and CI-style benchmark runs.
FAST_CONFIG = ExperimentConfig(n_patterns=16_384, state_patterns=16_384)
