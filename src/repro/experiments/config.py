"""Experiment configuration.

The paper's operating point (Section 4): VDD = 0.9 V, f = 1 GHz, fanout
of 3 for library characterization, 640 K random patterns for circuit
power estimation.  ``PAPER_CONFIG`` pins those values; tests and
benchmark harnesses use scaled-down pattern counts for speed, which is
explicitly recorded in their results.

Estimation itself is pluggable: ``backend`` names the registered
estimator backend (:mod:`repro.sim.backends`) that turns a mapped
netlist into a power report — ``"bitsim"`` is the paper's
random-pattern method.  The field rides through ``to_dict`` /
``from_dict`` and therefore into sweep task keys, so stored results
never mix backends.

``sim_kernel`` picks the bitsim execution kernel (per-gate vs the
levelized array path, ``"auto"`` by gate count).  Unlike ``backend``
it does **not** enter task keys: both kernels are bit-identical, so a
result computed by either answers both (see :meth:`key_dict`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict

from repro.errors import ExperimentError
from repro.power.model import PowerParameters

#: The class default of ``state_patterns`` (leakage-state histogram
#: budget); :meth:`ExperimentConfig.scaled` re-derives clamps from it.
DEFAULT_STATE_PATTERNS = 65_536

#: Accepted ``sim_kernel`` values.  ``"auto"`` lets
#: :mod:`repro.sim.kernels` pick by gate count; ``"gate"`` / ``"array"``
#: force the per-gate or the levelized array kernel.  Both kernels are
#: bit-identical, so the knob is serialized (``to_dict``/``from_dict``)
#: but *excluded* from activity/query/task keys — see
#: :meth:`ExperimentConfig.key_dict`.
SIM_KERNELS = ("auto", "gate", "array")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a reproduction run needs to be deterministic."""

    vdd: float = 0.9
    frequency: float = 1.0e9
    fanout: int = 3
    n_patterns: int = 640_000
    state_patterns: int = DEFAULT_STATE_PATTERNS
    seed: int = 2010
    synthesize: bool = True       # run resyn2rs before mapping
    mapper_cut_size: int = 5
    mapper_cut_limit: int = 8
    mapper_area_rounds: int = 2
    backend: str = "bitsim"       # registered estimator backend key
    sim_kernel: str = "auto"      # bitsim kernel policy (see SIM_KERNELS)

    def __post_init__(self) -> None:
        if self.n_patterns < 1:
            raise ExperimentError(
                f"n_patterns must be >= 1, got {self.n_patterns}")
        if self.state_patterns < 1:
            raise ExperimentError(
                f"state_patterns must be >= 1, got {self.state_patterns}")
        if self.sim_kernel not in SIM_KERNELS:
            raise ExperimentError(
                f"unknown sim_kernel {self.sim_kernel!r}; choose from "
                f"{', '.join(SIM_KERNELS)}")

    @property
    def power_parameters(self) -> PowerParameters:
        """The Eq. 2-5 operating conditions."""
        return PowerParameters(vdd=self.vdd, frequency=self.frequency,
                               fanout=self.fanout)

    def scaled(self, n_patterns: int) -> "ExperimentConfig":
        """Copy with a different pattern budget (for fast test runs).

        ``state_patterns`` follows the budget: an *explicit* state
        budget — any value other than the derived clamp
        ``min(n_patterns, default)`` — is preserved (still capped at
        the new budget), while a value that merely tracked the clamp is
        re-derived as ``min(default, n_patterns)``.  Scaling a fast
        config back up therefore restores the default state budget
        instead of silently keeping the stale down-clamp, and an
        explicitly raised budget survives rescaling too.
        """
        derived_clamp = min(self.n_patterns, DEFAULT_STATE_PATTERNS)
        if self.state_patterns == derived_clamp:
            state_patterns = min(DEFAULT_STATE_PATTERNS, n_patterns)
        else:
            state_patterns = min(self.state_patterns, n_patterns)
        return replace(self, n_patterns=n_patterns,
                       state_patterns=state_patterns)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (sweep stores persist this with every point)."""
        return asdict(self)

    def key_dict(self) -> Dict[str, Any]:
        """The fields that determine the *result* — the content-hash
        payload behind ``query_key``/``task_key``.

        Every field except ``sim_kernel``: the gate and array kernels
        are bit-identical, so the kernel choice must not fork cache
        keys (a store written with one kernel warm-starts the other).
        Hashing this dict produces exactly the hash of the pre-kernel
        dataclass, so existing stores keep matching.
        """
        payload = asdict(self)
        del payload["sim_kernel"]
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; rejects unknown fields.

        Absent fields take their defaults, so configs stored before a
        field existed (e.g. ``backend``) load with today's semantics.
        """
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown ExperimentConfig fields: {', '.join(unknown)}")
        return cls(**data)


#: The paper's configuration.
PAPER_CONFIG = ExperimentConfig()

#: A fast configuration for unit tests and CI-style benchmark runs.
FAST_CONFIG = ExperimentConfig(n_patterns=16_384, state_patterns=16_384)
