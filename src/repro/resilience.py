"""Resilience primitives: deadlines and retry policies.

Shared by the serving stack (per-request deadlines enforced between
engine pipeline stages, client retries against a flaky or overloaded
server) and usable by any other caller that talks to something that
can fail.

* :class:`Deadline` — a monotonic time budget.  Cheap to check;
  :meth:`Deadline.check` raises :class:`~repro.errors.DeadlineExceeded`
  naming the stage that would have run past it.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *decorrelated jitter* (each sleep is uniform between the base and
  3x the previous sleep, capped), the scheme that avoids retry
  stampedes when many clients back off from one overloaded server.
* :class:`RetryState` — one attempt sequence under a policy: tracks
  attempts, honors server-provided ``Retry-After`` hints, and stops
  when either the retry budget or the policy's total deadline runs
  out.  The sleep and RNG are injectable so tests can assert backoff
  bounds without waiting.
* :class:`Backoff` — plain capped exponential delays, *without*
  jitter, for supervisors pacing restarts of their own children
  (there is no stampede to decorrelate, and deterministic delays make
  chaos tests assertable).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget measured on the monotonic clock.

    ``seconds=None`` means "no deadline": :meth:`remaining` returns
    ``None`` and :meth:`check` never raises — callers can thread one
    object through unconditionally.
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: Optional[float] = None):
        self.seconds = seconds
        self._expires_at = None if seconds is None \
            else time.monotonic() + seconds

    @classmethod
    def after_ms(cls, ms: Optional[float]) -> "Deadline":
        """A deadline ``ms`` milliseconds from now (None = unbounded)."""
        return cls(None if ms is None else ms / 1000.0)

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); None when unbounded."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.seconds * 1000:.0f}ms exceeded"
                + (f" before stage {stage!r}" if stage else ""),
                stage=stage)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to keep retrying a failed operation.

    ``retries`` is the number of *re*-attempts after the first try.
    ``deadline_s`` bounds the whole sequence including sleeps —
    whichever budget runs out first ends the attempt.
    """

    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    deadline_s: Optional[float] = None

    def start(self, *, sleep: Callable[[float], None] = time.sleep,
              rng: Optional[random.Random] = None) -> "RetryState":
        """Begin one attempt sequence under this policy."""
        return RetryState(self, sleep=sleep, rng=rng)


class RetryState:
    """The mutable state of one retry sequence.

    Usage::

        state = policy.start()
        while True:
            try:
                return do_the_thing()
            except TransientError:
                if not state.retry():
                    raise
    """

    def __init__(self, policy: RetryPolicy, *,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None):
        self.policy = policy
        self.attempts = 0            # completed (failed) attempts
        self.sleeps: List[float] = []  # every backoff actually slept
        self.deadline = Deadline(policy.deadline_s)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._previous = policy.backoff_base_s

    def backoff(self) -> float:
        """Next decorrelated-jitter delay (does not sleep)."""
        delay = self._rng.uniform(self.policy.backoff_base_s,
                                  self._previous * 3)
        delay = min(self.policy.backoff_cap_s, delay)
        self._previous = max(delay, self.policy.backoff_base_s)
        return delay

    def retry(self, retry_after_s: Optional[float] = None) -> bool:
        """Account one failure; sleep and return True if allowed to retry.

        ``retry_after_s`` (a server's ``Retry-After`` hint) overrides
        the computed backoff, still capped by the policy.  Returns
        False — without sleeping — when the retry budget or the total
        deadline is exhausted, in which case the caller should raise.
        """
        self.attempts += 1
        if self.attempts > self.policy.retries:
            return False
        delay = self.backoff() if retry_after_s is None \
            else min(max(retry_after_s, 0.0), self.policy.backoff_cap_s)
        remaining = self.deadline.remaining()
        if remaining is not None and delay >= remaining:
            return False  # sleeping would outlive the total budget
        self.sleeps.append(delay)
        if delay > 0:
            self._sleep(delay)
        return True


@dataclass(frozen=True)
class Backoff:
    """Capped exponential delays: ``base * 2**(attempt-1)``, capped.

    The restart-pacing twin of :class:`RetryPolicy`: a supervisor
    restarting a crashed worker wants delays that grow (a worker dying
    instantly on boot must not busy-loop the machine) but stay
    deterministic — chaos tests assert on them, and unlike client
    retries there is no thundering herd to jitter away.
    """

    base_s: float = 0.2
    cap_s: float = 5.0

    def delay(self, attempt: int) -> float:
        """Delay before the ``attempt``-th retry (1-based)."""
        if attempt <= 1:
            return min(self.base_s, self.cap_s)
        return min(self.cap_s, self.base_s * (2.0 ** (attempt - 1)))


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse an HTTP ``Retry-After`` header value (seconds form only).

    HTTP-date forms are rare from our own server and simply ignored
    (the caller falls back to its computed backoff).
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None
