"""Self-healing multi-worker serving: the fleet supervisor.

One :class:`~repro.serve.http.PowerServer` process tops out around a
thousand warm queries per second — far below what the warm engine can
price — because every request threads through one Python process.
``repro serve --workers N`` runs a **fleet** instead: a supervisor
pre-forks N worker processes that share one service port, watches each
of them, and restarts whatever dies.

**Port sharing.**  Each worker owns its own listening socket bound
with ``SO_REUSEPORT`` — the kernel load-balances incoming connections
across the sibling sockets with no userspace proxy in the path.  On
platforms without ``SO_REUSEPORT`` the supervisor binds one listening
socket and every forked worker accepts on the inherited FD (the
pre-fork model; the kernel serializes accepts).  Both modes are
transparent to clients.

**Supervision.**  Every worker writes a heartbeat file
(``worker-<slot>.json``: pid, private admin port, readiness, wall
time) twice a second and serves its full ``/v1/healthz`` on a private
admin port.  The supervisor's monitor loop restarts a worker when

* its process exits (crash, OOM kill, ``worker.kill9`` fault), or
* its heartbeat goes stale (a hung worker is SIGKILLed first).

Restarts back off exponentially (:class:`repro.resilience.Backoff`),
and a worker that dies ``crash_loop_threshold`` times within
``crash_loop_window_s`` seconds is **benched** — the fleet degrades
gracefully instead of burning CPU on a doomed respawn loop.  When
*zero* workers are live the supervisor itself answers the service
port with ``503 {"error": {"code": "degraded"}}`` plus ``Retry-After``
so clients keep getting well-formed backpressure, never a silent
connection refusal.

**Aggregated health.**  A control endpoint (separate port) serves the
fleet-wide ``/v1/healthz``: per-worker liveness rows plus an
``aggregate`` block that sums every numeric counter (cache hits,
simulations, foundry solves, serve counters) across the workers'
admin healthz payloads — ``repro fleet status`` renders it as a
table.  Because the cold simulation path is cross-process
single-flight (:func:`repro.cache.single_flight`), the aggregate
``counters["stats.cold"]`` counts *fleet-wide* simulation work: N
cold workers asked the same query still sum to 1.

**Shutdown.**  SIGTERM drains the fleet *rolling*: workers get
SIGTERM one at a time and finish their in-flight requests while the
rest keep serving, so a fleet restart never turns away traffic.

The ``supervisor.restart_storm`` fault point (:mod:`repro.faults`)
makes the monitor loop SIGKILL one healthy worker per firing —
chaos drills exercise the restart/bench machinery from the
supervising side.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
import urllib.request
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro import __version__, faults
from repro.resilience import Backoff
from repro.serve.http import (
    DEFAULT_MAX_INFLIGHT,
    RETRY_AFTER_DRAINING,
)

#: How often workers write their heartbeat file, seconds.
HEARTBEAT_INTERVAL_S = 0.5

#: ``Retry-After`` (seconds, header string) of the degraded responder.
RETRY_AFTER_DEGRADED = "2"

#: The degraded responder's fixed 503 payload.
_DEGRADED_BODY = json.dumps({
    "error": {"code": "degraded",
              "message": "no live fleet workers; supervisor is "
                         "restarting them — retry shortly"}
}).encode("utf-8")


def reuse_port_supported() -> bool:
    """Whether this platform load-balances ``SO_REUSEPORT`` siblings."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def _listening_socket(host: str, port: int,
                      reuse_port: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except OSError:
        sock.close()
        raise
    return sock


def merge_counters(into: Dict[str, Any],
                   payload: Dict[str, Any]) -> Dict[str, Any]:
    """Recursively sum ``payload``'s numeric leaves into ``into``.

    Non-numeric leaves (version strings, kernel names, config blocks)
    are skipped — the result is a pure counter aggregate, which is the
    only thing that is meaningful summed across workers.
    """
    for key, value in payload.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, dict):
            node = into.setdefault(key, {})
            if isinstance(node, dict):
                merge_counters(node, value)
        elif isinstance(value, (int, float)):
            if isinstance(into.get(key), (int, float)):
                into[key] += value
            else:
                into[key] = value
    return into


# -- worker process -----------------------------------------------------------

def _worker_main(slot: int, sock: socket.socket, config,
                 store: Optional[str], max_inflight: Optional[int],
                 run_dir: str, drain_timeout_s: float) -> None:
    """Body of one forked fleet worker.

    Builds its own engine *post-fork* (no shared mutable state with
    siblings beyond the disk cache, which is multi-process safe),
    serves the shared service socket, answers supervisor probes on a
    private loopback admin port, and heartbeats to ``run_dir``.
    """
    from repro import cache as disk_cache
    from repro import timing
    from repro.api import Session
    from repro.serve.engine import Engine
    from repro.serve.http import PowerServer
    from repro.sim import activity

    # Ctrl-C goes to the whole process group; the supervisor
    # coordinates the drain, so workers ignore SIGINT and wait for
    # its per-worker SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Fork semantics: the child inherits every module-level cache and
    # counter the parent process had accumulated.  A worker must start
    # cold — an inherited warm stats LRU would silently answer "cold"
    # queries without simulating, and inherited counters would be
    # double-counted by the supervisor's fleet-wide aggregation.
    activity.clear_cache(reset_counters=True)
    timing.clear_cache(reset_counters=True)
    disk_cache.reset_cache_stats()

    engine = Engine(Session(config), store=store)
    meta = {"slot": slot, "pid": os.getpid()}
    server = PowerServer(engine, max_inflight=max_inflight, sock=sock)
    server.worker_meta = meta
    admin = PowerServer(engine, ("127.0.0.1", 0), max_inflight=None)
    admin.worker_meta = meta

    stop = threading.Event()
    heartbeat_path = Path(run_dir) / f"worker-{slot}.json"
    tmp_path = heartbeat_path.with_name(heartbeat_path.name + ".tmp")

    def heartbeat_loop() -> None:
        while not stop.is_set():
            payload = {"slot": slot, "pid": os.getpid(),
                       "admin_port": admin.server_address[1],
                       "ready": server.is_ready(),
                       "time": time.time()}
            try:
                tmp_path.write_text(json.dumps(payload),
                                    encoding="utf-8")
                os.replace(tmp_path, heartbeat_path)
            except OSError:
                pass  # a full disk must not look like a hang
            stop.wait(HEARTBEAT_INTERVAL_S)

    def drain() -> None:
        server.begin_drain()
        admin.begin_drain()
        server.wait_idle(timeout=drain_timeout_s)
        engine.flush()
        server.shutdown()
        admin.shutdown()

    def on_sigterm(signum, frame) -> None:
        # shutdown() deadlocks called from the serve_forever thread,
        # which is where Python delivers signals — drain elsewhere.
        threading.Thread(target=drain, name="drain",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, on_sigterm)
    threading.Thread(target=admin.serve_forever, name="admin",
                     daemon=True).start()
    server.mark_ready()
    admin.mark_ready()
    heartbeat = threading.Thread(target=heartbeat_loop,
                                 name="heartbeat", daemon=True)
    heartbeat.start()
    try:
        server.serve_forever()
    finally:
        stop.set()
        server.server_close()
        admin.server_close()


# -- degraded responder -------------------------------------------------------

class _DegradedResponder:
    """A minimal 503 answering machine for the zero-live-worker case.

    Accepts on the service socket (its own ``SO_REUSEPORT`` sibling,
    or the shared pre-fork socket) and answers every request with the
    structured ``degraded`` error plus ``Retry-After`` — clients keep
    receiving schema-valid backpressure while the fleet heals.
    """

    def __init__(self, sock: socket.socket, owns_sock: bool):
        self._sock = sock
        self._owns = owns_sock
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="degraded", daemon=True)
        self.responses = 0

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        self._sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(1.0)
                try:
                    conn.recv(1 << 16)  # drain whatever request came
                except OSError:
                    pass
                head = (
                    "HTTP/1.0 503 Service Unavailable\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(_DEGRADED_BODY)}\r\n"
                    f"Retry-After: {RETRY_AFTER_DEGRADED}\r\n"
                    "Connection: close\r\n\r\n").encode("ascii")
                conn.sendall(head + _DEGRADED_BODY)
                self.responses += 1
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        if self._owns:
            try:
                self._sock.close()
            except OSError:
                pass


# -- control endpoint ---------------------------------------------------------

class _ControlHandler(BaseHTTPRequestHandler):
    """The supervisor's own health API (``self.server.supervisor``)."""

    server_version = f"repro-fleet/{__version__}"
    protocol_version = "HTTP/1.1"

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        supervisor: "FleetSupervisor" = \
            self.server.supervisor  # type: ignore[attr-defined]
        try:
            if path in ("/v1/healthz", "/healthz"):
                self._send_json(200, supervisor.stats())
            elif path == "/v1/healthz/live":
                self._send_json(200, {"status": "alive",
                                      "role": "supervisor",
                                      "version": __version__})
            elif path == "/v1/healthz/ready":
                if supervisor.n_ready() > 0:
                    self._send_json(200, {"status": "ready"})
                else:
                    self._send_json(
                        503,
                        {"error": {"code": "degraded",
                                   "message": "no ready fleet worker"}},
                        {"Retry-After": RETRY_AFTER_DRAINING})
            else:
                self._send_json(
                    404, {"error": {"code": "not_found",
                                    "message": f"unknown path {path!r}"}})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": {"code": "internal",
                                            "message": str(exc)}})


# -- supervisor ---------------------------------------------------------------

@dataclass
class FleetConfig:
    """Everything a :class:`FleetSupervisor` needs to run a fleet."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8321                 #: service port (0 = OS-assigned)
    control_port: int = 0            #: supervisor health port (0 = any)
    config: Any = None               #: worker ExperimentConfig
    store: Optional[str] = None
    max_inflight: Optional[int] = DEFAULT_MAX_INFLIGHT
    drain_timeout_s: float = 30.0
    poll_s: float = 0.25             #: monitor-loop cadence
    heartbeat_stale_s: float = 10.0  #: silence that counts as hung
    backoff_base_s: float = 0.2      #: first restart delay
    backoff_cap_s: float = 5.0
    crash_loop_threshold: int = 5    #: deaths within the window ...
    crash_loop_window_s: float = 30.0  # ... that bench a worker
    run_dir: Optional[str] = None    #: heartbeat dir (default: tempdir)


class _WorkerSlot:
    """The supervisor-side record of one worker slot."""

    def __init__(self, slot: int):
        self.slot = slot
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.state = "stopped"   # starting|live|backoff|benched|stopped
        self.restarts = 0        # respawns after a death
        self.deaths: List[float] = []   # monotonic death times
        self.streak = 0          # consecutive deaths, resets when the
        self.restart_at = 0.0    # worker outlives the crash-loop window
        self.spawned_at = 0.0
        self.admin_port: Optional[int] = None
        self.heartbeat_time = 0.0   # wall time of the last heartbeat
        self.ready = False
        self.last_exit: Optional[str] = None


class FleetSupervisor:
    """Pre-forks, watches, restarts and drains a worker fleet.

    Usage (the CLI does exactly this)::

        fleet = FleetSupervisor(FleetConfig(workers=3, port=8321))
        fleet.start()            # non-blocking: workers + monitor
        ...
        fleet.shutdown()         # rolling drain, idempotent

    ``service_url`` is where clients send queries; ``control_url``
    serves the aggregated fleet ``/v1/healthz``.
    """

    def __init__(self, config: FleetConfig):
        if config.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.config = config
        self.host = config.host
        self.port = config.port
        self.control_port = 0
        self.reuse_port = reuse_port_supported()
        self.events: Deque[str] = deque(maxlen=64)
        self._ctx = multiprocessing.get_context("fork")
        self._slots = [_WorkerSlot(i) for i in range(config.workers)]
        self._backoff = Backoff(base_s=config.backoff_base_s,
                                cap_s=config.backoff_cap_s)
        self._shared_sock: Optional[socket.socket] = None
        self._degraded: Optional[_DegradedResponder] = None
        self._control: Optional[ThreadingHTTPServer] = None
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._started_at = 0.0
        self._run_dir: Optional[Path] = None
        self._own_run_dir = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def service_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def control_url(self) -> str:
        return f"http://{self.host}:{self.control_port}"

    def start(self) -> None:
        """Bind, pre-fork every worker and start the monitor thread."""
        self._started_at = time.time()
        if self.config.run_dir:
            self._run_dir = Path(self.config.run_dir)
            self._run_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._run_dir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
            self._own_run_dir = True
        if not self.reuse_port:
            # Pre-fork fallback: one shared listening socket, every
            # worker accepts on the inherited FD.
            self._shared_sock = _listening_socket(self.host, self.port,
                                                  reuse_port=False)
            self.port = self._shared_sock.getsockname()[1]
        self._log(f"supervisor pid {os.getpid()}: starting "
                  f"{self.config.workers} worker(s) on "
                  f"{self.host}:{self.port or '(auto)'} "
                  f"({'SO_REUSEPORT' if self.reuse_port else 'inherited FD'}"
                  f" mode)")
        for worker in self._slots:
            self._spawn(worker)
        control = ThreadingHTTPServer((self.host, self.config.control_port),
                                      _ControlHandler)
        control.daemon_threads = True
        control.supervisor = self  # type: ignore[attr-defined]
        self._control = control
        self.control_port = control.server_address[1]
        threading.Thread(target=control.serve_forever, name="control",
                         daemon=True).start()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="monitor", daemon=True)
        self._monitor.start()
        self._log(f"control endpoint on {self.control_url}")

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until at least one worker heartbeats ready."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.n_ready() > 0:
                return True
            if self._stop.wait(0.05):
                return False
        return False

    def initiate_shutdown(self, reason: str = "") -> None:
        """Signal-handler safe: ask the fleet to drain and stop."""
        if not self._stop.is_set():
            self._log(f"shutdown requested"
                      + (f" ({reason})" if reason else ""))
        self._stop.set()

    def run_forever(self) -> None:
        """Block until :meth:`initiate_shutdown`, then drain and stop."""
        try:
            while not self._stop.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            self._stop.set()
        self.shutdown()

    def shutdown(self) -> None:
        """Rolling drain of every worker, then tear everything down.

        Workers get SIGTERM one at a time — each finishes its
        in-flight requests while the rest keep serving, so a fleet
        restart sheds no traffic.  Idempotent.
        """
        self._stop.set()
        with self._lock:
            if self._done.is_set():
                return
            self._done.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        self._log("draining fleet (rolling SIGTERM)")
        for worker in self._slots:
            proc = worker.proc
            if proc is None or not proc.is_alive():
                worker.state = "stopped"
                worker.proc = None
                continue
            self._log(f"worker {worker.slot}: SIGTERM")
            try:
                os.kill(proc.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            proc.join(timeout=self.config.drain_timeout_s + 5.0)
            if proc.is_alive():
                self._log(f"worker {worker.slot}: drain timeout; SIGKILL")
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.join(timeout=2.0)
            worker.state = "stopped"
            worker.proc = None
        if self._degraded is not None:
            self._degraded.stop()
            self._degraded = None
        if self._control is not None:
            self._control.shutdown()
            self._control.server_close()
            self._control = None
        if self._shared_sock is not None:
            try:
                self._shared_sock.close()
            except OSError:
                pass
            self._shared_sock = None
        if self._own_run_dir and self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)
        self._log("fleet stopped")

    # -- spawning / monitoring ---------------------------------------------

    def _log(self, message: str) -> None:
        line = f"[fleet {time.strftime('%H:%M:%S')}] {message}"
        self.events.append(line)
        print(line, flush=True)

    def _service_socket(self) -> socket.socket:
        sock = _listening_socket(self.host, self.port, reuse_port=True)
        if self.port == 0:
            # First bind resolves the OS-assigned port; every sibling
            # socket then binds the same number.
            self.port = sock.getsockname()[1]
        return sock

    def _spawn(self, worker: _WorkerSlot) -> None:
        if self._degraded is not None:
            # Never fork while the degraded responder's listening
            # socket is open: the child would inherit a service-port
            # socket it never accepts on, and the kernel would keep
            # balancing connections into that black hole until the
            # client times out.  _update_degraded re-arms the
            # responder on the next tick if the fleet is still down.
            self._degraded.stop()
            self._degraded = None
            self._log("degraded responder off (spawning worker)")
        if self.reuse_port:
            try:
                sock = self._service_socket()
            except OSError as exc:
                self._log(f"worker {worker.slot}: bind failed: {exc}")
                worker.state = "backoff"
                worker.restart_at = time.monotonic() \
                    + self._backoff.delay(max(1, worker.streak))
                return
        else:
            assert self._shared_sock is not None
            sock = self._shared_sock
        # Remove the previous incarnation's heartbeat so its readiness
        # cannot leak into the new worker's grace period.
        try:
            (self._run_dir / f"worker-{worker.slot}.json").unlink()
        except OSError:
            pass
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker.slot, sock, self.config.config,
                  self.config.store, self.config.max_inflight,
                  str(self._run_dir), self.config.drain_timeout_s),
            name=f"fleet-worker-{worker.slot}", daemon=True)
        proc.start()
        if self.reuse_port:
            sock.close()  # the child inherited its own copy
        if worker.state == "backoff":
            worker.restarts += 1
        worker.proc = proc
        worker.state = "live"
        worker.spawned_at = time.monotonic()
        worker.heartbeat_time = 0.0
        worker.ready = False
        worker.admin_port = None
        self._log(f"worker {worker.slot}: spawned pid {proc.pid}"
                  + (f" (restart #{worker.restarts})"
                     if worker.restarts else ""))

    def _read_heartbeat(self, worker: _WorkerSlot) -> None:
        path = self._run_dir / f"worker-{worker.slot}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if worker.proc is None or payload.get("pid") != worker.proc.pid:
            return  # a previous incarnation's file
        worker.heartbeat_time = float(payload.get("time") or 0.0)
        worker.ready = bool(payload.get("ready"))
        admin_port = payload.get("admin_port")
        if isinstance(admin_port, int) and admin_port > 0:
            worker.admin_port = admin_port

    def _on_death(self, worker: _WorkerSlot, reason: str) -> None:
        now = time.monotonic()
        if worker.proc is not None:
            worker.proc.join(timeout=1.0)
            worker.proc = None
        worker.ready = False
        worker.last_exit = reason
        window = self.config.crash_loop_window_s
        if worker.deaths and now - worker.deaths[-1] > window:
            worker.streak = 0  # it ran healthy for a full window
        worker.deaths.append(now)
        worker.streak += 1
        recent = sum(1 for t in worker.deaths if now - t <= window)
        if recent >= self.config.crash_loop_threshold:
            worker.state = "benched"
            self._log(f"worker {worker.slot}: {reason}; {recent} deaths "
                      f"in {window:g}s — BENCHED (crash loop)")
            return
        delay = self._backoff.delay(worker.streak)
        worker.state = "backoff"
        worker.restart_at = now + delay
        threshold = self.config.crash_loop_threshold
        self._log(f"worker {worker.slot}: {reason}; restart in "
                  f"{delay:.2f}s (death {recent}/{threshold} in window)")

    def _maybe_restart_storm(self) -> None:
        live = [worker for worker in self._slots
                if worker.state == "live" and worker.proc is not None
                and worker.proc.is_alive()]
        if not live:
            return
        if faults.fire("supervisor.restart_storm", context="fleet") is None:
            return
        victim = live[0]
        self._log(f"restart_storm fault: SIGKILL worker {victim.slot}")
        try:
            os.kill(victim.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    def _tick(self) -> None:
        now = time.monotonic()
        self._maybe_restart_storm()
        for worker in self._slots:
            if worker.state in ("benched", "stopped"):
                continue
            if worker.state == "backoff":
                if now >= worker.restart_at:
                    self._spawn(worker)
                continue
            proc = worker.proc
            if proc is None or not proc.is_alive():
                code = proc.exitcode if proc is not None else None
                self._on_death(worker, f"died (exit {code})")
                continue
            self._read_heartbeat(worker)
            last_seen = worker.heartbeat_time
            if last_seen:
                stale = time.time() - last_seen \
                    > self.config.heartbeat_stale_s
            else:  # never heartbeated: grace from spawn time
                stale = now - worker.spawned_at \
                    > self.config.heartbeat_stale_s
            if stale:
                self._log(f"worker {worker.slot}: heartbeat stale; "
                          f"SIGKILL pid {proc.pid}")
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.join(timeout=2.0)
                self._on_death(worker, "hung (stale heartbeat)")
        self._update_degraded()

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception as exc:  # pragma: no cover - defensive
                self._log(f"monitor error: {exc!r}")
            self._stop.wait(self.config.poll_s)

    def _update_degraded(self) -> None:
        any_live = any(worker.state == "live" and worker.proc is not None
                       and worker.proc.is_alive()
                       for worker in self._slots)
        if any_live:
            if self._degraded is not None:
                self._degraded.stop()
                self._degraded = None
                self._log("live worker back; degraded responder off")
            return
        if self._degraded is not None:
            return
        try:
            if self.reuse_port:
                sock = self._service_socket()
                owns = True
            else:
                sock = self._shared_sock
                owns = False
            if sock is None:
                return
        except OSError as exc:  # pragma: no cover - port race
            self._log(f"degraded responder bind failed: {exc}")
            return
        self._degraded = _DegradedResponder(sock, owns_sock=owns)
        self._degraded.start()
        self._log("0 live workers: serving 503 degraded on the "
                  "service port")

    # -- health ------------------------------------------------------------

    def n_live(self) -> int:
        return sum(1 for worker in self._slots
                   if worker.state == "live" and worker.proc is not None
                   and worker.proc.is_alive())

    def n_ready(self) -> int:
        return sum(1 for worker in self._slots
                   if worker.state == "live" and worker.ready
                   and worker.proc is not None and worker.proc.is_alive())

    def _fetch_worker_healthz(self, worker: _WorkerSlot,
                              timeout: float = 2.0
                              ) -> Optional[Dict[str, Any]]:
        if worker.admin_port is None:
            return None
        url = f"http://127.0.0.1:{worker.admin_port}/v1/healthz"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except Exception:
            return None  # probed mid-restart; the row says so

    def stats(self) -> Dict[str, Any]:
        """The aggregated fleet ``/v1/healthz`` payload.

        Per-worker liveness rows plus an ``aggregate`` block summing
        every numeric counter across the live workers' own healthz
        payloads (cache occupancy/hits, simulations, foundry solves,
        serve counters) — the fleet-wide view of how much work was
        actually done, and the meter chaos drills assert on.
        """
        now = time.time()
        workers = []
        aggregate: Dict[str, Any] = {}
        for worker in self._slots:
            alive = worker.proc is not None and worker.proc.is_alive()
            row: Dict[str, Any] = {
                "slot": worker.slot,
                "state": worker.state,
                "pid": worker.proc.pid if alive else None,
                "ready": worker.ready and alive,
                "restarts": worker.restarts,
                "deaths": len(worker.deaths),
                "admin_port": worker.admin_port,
                "last_exit": worker.last_exit,
                "heartbeat_age_s": round(now - worker.heartbeat_time, 3)
                if worker.heartbeat_time else None,
            }
            if worker.state == "live" and alive:
                payload = self._fetch_worker_healthz(worker)
                if payload is not None:
                    row["inflight"] = payload.get("inflight")
                    row["uptime_s"] = round(payload.get("uptime_s", 0), 3)
                    merge_counters(aggregate, {
                        key: payload[key]
                        for key in ("caches", "sim", "foundry", "counters")
                        if isinstance(payload.get(key), dict)})
            workers.append(row)
        n_live = self.n_live()
        return {
            "status": "ok" if n_live else "degraded",
            "role": "supervisor",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": round(now - self._started_at, 3),
            "service_url": self.service_url,
            "reuse_port": self.reuse_port,
            "workers": workers,
            "n_workers": len(self._slots),
            "n_live": n_live,
            "n_ready": self.n_ready(),
            "n_benched": sum(1 for worker in self._slots
                             if worker.state == "benched"),
            "restarts_total": sum(worker.restarts
                                  for worker in self._slots),
            "deaths_total": sum(len(worker.deaths)
                                for worker in self._slots),
            "degraded_responses": self._degraded.responses
            if self._degraded is not None else 0,
            "aggregate": aggregate,
            "events": list(self.events),
        }
