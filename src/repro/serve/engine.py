"""The warm estimation engine behind ``repro serve``.

An :class:`Engine` answers :class:`~repro.schema.PowerQuery` requests
with :class:`~repro.schema.PowerQuoteReport` responses, bit-identical
to :meth:`repro.api.Session.run` for the same (circuit, library,
config) triple, while keeping every expensive intermediate warm:

* **results** — finished reports, LRU-keyed by ``query_key`` (the
  sweep-task content hash), so a repeated identical query is a
  dictionary lookup (``cache_status: "hot"``);
* **netlists** — mapped netlists, LRU-keyed by the subset of the
  config that shapes mapping (circuit, library, vdd, synthesize,
  mapper options), so changing only estimation knobs (frequency,
  fanout, pattern budget, backend) re-estimates without re-mapping;
* **libraries** — characterized libraries per (key, vdd), fronting
  the per-process registry cache with engine-level hit/miss counters;
* **stats** — simulation statistics (the :mod:`repro.sim.activity`
  LRU, content-addressed by netlist + pattern budget), so a
  pricing-only requery — same circuit at a new frequency, fanout or
  supply — does zero bit-parallel simulation work.  ``/healthz``
  reports it as the ``stats`` cache with ``stats.hot`` /
  ``stats.cold`` counters.

Batch queries (``POST /v1/estimate_batch`` ->
:meth:`Engine.estimate_batch`) are grouped server-side by activity so
a grid of operating points over one circuit pays for one simulation.

Identical queries that arrive *while one is still computing* are
coalesced: the followers block on the leader's future and are answered
from its result (``cache_status: "coalesced"``) — N clients asking for
the same cold cell cost one synthesis, not N.

All keys are ``stable_hash`` content hashes (:mod:`repro.cache`), so
an optional sweep-format result store can warm-start the engine and
every answer the engine computes can resume a sweep.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import Future, TimeoutError as FutureTimeout
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro import __version__, faults, foundry, registry
from repro.api import Session
from repro.cache import cache_stats, stable_hash
from repro.power.pattern_sim import spice_solve_count
from repro.errors import DeadlineExceeded
from repro.experiments.config import ExperimentConfig
from repro.resilience import Deadline
from repro.experiments.flow import (
    estimate_mapped,
    map_subject,
    synthesized_benchmark,
)
from repro.schema import (
    OptimizeQuery,
    OptimizeReport,
    PowerQuery,
    PowerQuoteReport,
)
from repro.sim.activity import (
    cache_info as activity_cache_info,
    pricing_group_key,
)
from repro.sim.backends import available_backends
from repro.timing import cache_info as timing_cache_info

#: Default LRU capacities.  Finished reports are tiny (a dataclass of
#: floats); netlists and libraries are the heavy entries.
DEFAULT_MAX_RESULTS = 4096
DEFAULT_MAX_NETLISTS = 64
DEFAULT_MAX_LIBRARIES = 16


class _LruCache:
    """A tiny LRU with hit/miss counters (not itself thread-safe; the
    engine serializes access under its lock)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, key: str) -> Optional[Any]:
        value = self._data.get(key)
        if value is None:
            return None
        self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class Engine:
    """A long-lived, thread-safe power-estimation service core.

    Args:
        session: the :class:`~repro.api.Session` whose config is the
            default for queries that omit one, and whose library
            selection seeds discovery.  Defaults to ``Session()``
            (the paper's configuration).
        max_results / max_netlists / max_libraries: LRU capacities.
        store: optional sweep-format result store (a
            :class:`~repro.sweep.store.ResultStore` or a path, suffix
            selecting the backend).  Every computed answer is appended
            to it, and result-cache misses consult it before
            computing — a finished sweep therefore warm-starts the
            server, and a long-running server leaves a resumable sweep
            store behind.
    """

    def __init__(self, session: Optional[Session] = None, *,
                 max_results: int = DEFAULT_MAX_RESULTS,
                 max_netlists: int = DEFAULT_MAX_NETLISTS,
                 max_libraries: int = DEFAULT_MAX_LIBRARIES,
                 store: Optional[Union[str, Path, Any]] = None):
        self.session = session if session is not None else Session()
        self._results = _LruCache(max_results)
        self._netlists = _LruCache(max_netlists)
        self._libraries = _LruCache(max_libraries)
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._generation = registry.generation()
        self.counters: Counter = Counter()
        self.started_monotonic = time.monotonic()
        # The activity cache is process-wide; counters are reported
        # relative to this engine's start, so /healthz approximates
        # *its* traffic (other sessions in the process also move them).
        self._stats_baseline = activity_cache_info()
        # Same baseline treatment for the foundry's artifact counters
        # and the SPICE solve meter: /healthz reports what happened on
        # this engine's watch, zero on a fully-prebuilt artifact store.
        self._foundry_baseline = foundry.foundry_counters()
        self._solves_baseline = spice_solve_count()
        if store is None:
            self._store = None
            self._store_index: Dict[str, Any] = {}
        else:
            from repro.sweep.store import ResultStore, open_store

            self._store = store if isinstance(store, ResultStore) \
                else open_store(store)
            # One scan at startup; the JSONL backend's get() would
            # otherwise re-read the whole file per result-cache miss,
            # and inside the engine lock at that.  Appends keep the
            # index current, so the store is never re-scanned.
            self._store_index = {record["task_key"]: record
                                 for record in self._store.records()}

    # -- discovery ---------------------------------------------------------

    @staticmethod
    def circuits() -> List[Dict[str, Any]]:
        """Registered circuits with their metadata (the ``/v1/circuits``
        payload)."""
        out = []
        for key in registry.available_circuits():
            entry = registry.circuit_entry(key)
            out.append({
                "key": entry.key,
                "aliases": list(entry.aliases),
                "description": entry.description,
                "function": entry.function,
                "paper_benchmark": entry.paper is not None,
            })
        return out

    @staticmethod
    def libraries() -> List[Dict[str, Any]]:
        """Registered libraries with their metadata plus foundry
        artifact provenance (the ``/v1/libraries`` payload)."""
        return foundry.library_listing()

    def backends(self) -> Dict[str, Any]:
        """Registered estimator backends (the ``/v1/backends`` payload)."""
        return {"backends": available_backends(),
                "default": self.session.config.backend}

    def stats(self) -> Dict[str, Any]:
        """Uptime, cache occupancy and counters (the ``/healthz``
        payload body)."""
        activity = activity_cache_info()
        baseline = self._stats_baseline
        # Clamped at zero: the global counters can be reset under us
        # (activity.clear_cache(reset_counters=True)), and negative
        # health numbers help nobody.
        stats_hot = max(0, activity["hits"] - baseline["hits"])
        stats_cold = max(0, activity["simulations"]
                         - baseline["simulations"])
        with self._lock:
            counters = dict(self.counters)
            counters["stats.hot"] = stats_hot
            counters["stats.cold"] = stats_cold
            return {
                "version": __version__,
                "uptime_s": time.monotonic() - self.started_monotonic,
                "default_config": self.session.config.to_dict(),
                "store": str(self._store.path) if self._store is not None
                else None,
                "caches": {
                    "results": {"size": len(self._results),
                                "max": self._results.maxsize,
                                "hits": self._results.hits,
                                "misses": self._results.misses},
                    "netlists": {"size": len(self._netlists),
                                 "max": self._netlists.maxsize,
                                 "hits": self._netlists.hits,
                                 "misses": self._netlists.misses},
                    "libraries": {"size": len(self._libraries),
                                  "max": self._libraries.maxsize,
                                  "hits": self._libraries.hits,
                                  "misses": self._libraries.misses},
                    "stats": {"size": activity["size"],
                              "max": activity["max"],
                              "hits": stats_hot,
                              "misses": max(0, activity["misses"]
                                            - baseline["misses"])},
                    # Static-timing reports (repro.timing): process-
                    # wide like the stats cache, absolute counters.
                    "timing": timing_cache_info(),
                    # Disk-cache integrity (process lifetime):
                    # quarantined > 0 means corrupt entries were found,
                    # moved aside and transparently recomputed.
                    "disk": cache_stats(),
                },
                "sim": self._sim_stats(),
                "foundry": self._foundry_stats(),
                "counters": counters,
            }

    def _foundry_stats(self) -> Dict[str, int]:
        """Artifact hits vs live solves since this engine started.

        ``spice_solves`` is the acceptance meter: a server running
        against a complete prebuilt artifact store must hold it at 0.
        """
        current = foundry.foundry_counters()
        baseline = self._foundry_baseline
        out = {name.replace("artifact.", "artifact_"):
               max(0, current[name] - baseline.get(name, 0))
               for name in current}
        out["spice_solves"] = max(0, spice_solve_count()
                                  - self._solves_baseline)
        return out

    def _sim_stats(self) -> Dict[str, Any]:
        """Kernel-selection policy and cumulative per-kernel throughput
        counters (part of the ``/healthz`` payload)."""
        from repro.sim.kernels import AUTO_ARRAY_THRESHOLD, kernel_counters

        return {
            "default_kernel": self.session.config.sim_kernel,
            "auto_array_threshold": AUTO_ARRAY_THRESHOLD,
            "kernels": kernel_counters(),
        }

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a serve counter (thread-safe; shows in /healthz)."""
        with self._lock:
            self.counters[name] += amount

    def flush(self) -> None:
        """Flush durable state (the result store) to disk.

        Called by the server's graceful-shutdown path after the last
        in-flight request drains; safe to call at any time.
        """
        if self._store is not None:
            self._store.flush()

    # -- query handling ----------------------------------------------------

    def _revalidate_locked(self) -> None:
        """Drop every name-keyed warm entry after a (re/un)registration.

        A registration may have changed what a circuit/library name
        means; every name-keyed warm entry is then suspect — including
        stored records (their task_key hashes the *name*).  The store
        itself is last-write-wins, so recomputed answers simply
        overwrite the stale lines.  Caller holds the engine lock.
        """
        if registry.generation() != self._generation:
            self._results.clear()
            self._netlists.clear()
            self._libraries.clear()
            self._store_index.clear()
            self._generation = registry.generation()
            self.counters["caches.invalidated"] += 1

    def normalize(self, query: PowerQuery) -> PowerQuery:
        """Canonicalize a query so aliases hit the same cache entries.

        Circuit and library names resolve through the registry (raising
        the usual "choose from ..." errors for unknown names); a
        ``None`` config takes the session default.
        """
        config = query.config if query.config is not None \
            else self.session.config
        return PowerQuery(
            circuit=registry.canonical_circuit(query.circuit),
            library=registry.canonical_library(query.library),
            config=config,
            deadline_ms=query.deadline_ms)

    def estimate_request(self, circuit: str, library: str,
                         config: Optional[ExperimentConfig] = None
                         ) -> PowerQuoteReport:
        """Convenience wrapper: build the query, then :meth:`estimate`."""
        return self.estimate(PowerQuery(
            circuit=circuit, library=library,
            config=config if config is not None else self.session.config))

    def estimate(self, query: PowerQuery,
                 deadline: Optional[Deadline] = None) -> PowerQuoteReport:
        """Answer one query, warm where possible.

        The returned report's ``cache_status`` says how it was served:
        ``"hot"`` (result cache or store), ``"coalesced"`` (attached to
        an identical in-flight computation) or ``"cold"`` (computed
        now).  ``elapsed_s`` is the serving time of *this* call.

        The query's ``deadline_ms`` (or an explicit ``deadline``)
        bounds the call: the budget is checked *between* pipeline
        stages — never mid-kernel — and on expiry the call raises
        :class:`~repro.errors.DeadlineExceeded` having written nothing.
        ``deadline_ms`` is excluded from ``query_key``, so concurrent
        identical queries with different budgets still coalesce; a
        follower whose own budget outlives a leader that timed out
        simply retries as the new leader.
        """
        start = time.perf_counter()
        query = self.normalize(query)
        if deadline is None:
            deadline = Deadline.after_ms(query.deadline_ms)
        key = query.query_key

        while True:
            with self._lock:
                self._revalidate_locked()
                report = self._results.get(key)
                if report is not None:
                    self._results.hits += 1
                    self.counters["results.hot"] += 1
                    return report.with_status(
                        "hot", time.perf_counter() - start)
                self._results.misses += 1
                if self._store is not None:
                    record = self._store_index.get(key)
                    if record is not None:
                        from repro.schema import quote_from_record

                        report = quote_from_record(
                            record, server_version=__version__)
                        self._results.put(key, report)
                        self.counters["results.store"] += 1
                        self.counters["results.hot"] += 1
                        return report.with_status(
                            "hot", time.perf_counter() - start)
                leader_future = self._inflight.get(key)
                if leader_future is None:
                    leader_future = Future()
                    self._inflight[key] = leader_future
                    is_leader = True
                    enrolled_generation = self._generation
                else:
                    is_leader = False
                    self.counters["results.coalesced"] += 1

            if is_leader:
                break
            try:
                report = leader_future.result(
                    timeout=deadline.remaining())
            except FutureTimeout:
                with self._lock:
                    self.counters["deadline.exceeded"] += 1
                raise DeadlineExceeded(
                    "deadline exceeded while coalesced behind an "
                    "identical in-flight query", stage="coalesce")
            except DeadlineExceeded:
                # The *leader's* budget ran out, not necessarily ours.
                # The leader already removed itself from _inflight, so
                # looping re-enters the lock and (budget permitting)
                # makes us the new leader.
                if deadline.expired():
                    with self._lock:
                        self.counters["deadline.exceeded"] += 1
                    raise
                continue
            return report.with_status(
                "coalesced", time.perf_counter() - start)

        try:
            report = self._compute(query, deadline)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
                if isinstance(exc, DeadlineExceeded):
                    self.counters["deadline.exceeded"] += 1
            leader_future.set_exception(exc)
            raise
        with self._lock:
            # A re-registration while we computed may have changed what
            # the circuit/library names mean; a result built from the
            # old definitions must not enter any cache or the store.
            still_fresh = (registry.generation() == enrolled_generation
                           and self._generation == enrolled_generation)
            if still_fresh:
                self._results.put(key, report)
            self._inflight.pop(key, None)
            self.counters["results.cold"] += 1
        leader_future.set_result(report)
        if self._store is not None and still_fresh:
            from repro.schema import store_record

            record = store_record(query, report.result, report.elapsed_s)
            self._store.append(record)
            with self._lock:
                if self._generation == enrolled_generation:
                    self._store_index[key] = record
        return report.with_status("cold", time.perf_counter() - start)

    def estimate_batch(self, queries: List[PowerQuery]
                       ) -> List[PowerQuoteReport]:
        """Answer many queries, grouped so shared activity simulates once.

        Queries are normalized, then served in activity-group order
        (:func:`repro.sim.activity.pricing_group_key` — everything but
        the pricing axes vdd/frequency/fanout): the first query of a
        group pays the simulation, every following one is pure pricing
        through the stats cache.  Results return in input order, each
        with its own ``cache_status``/``elapsed_s``; a grid of N
        operating points over one circuit therefore costs one
        simulation, not N.
        """
        normalized = [self.normalize(query) for query in queries]
        order = sorted(
            range(len(normalized)),
            key=lambda i: pricing_group_key(normalized[i].circuit,
                                            normalized[i].library,
                                            normalized[i].config))
        reports: List[Optional[PowerQuoteReport]] = [None] * len(normalized)
        for index in order:
            reports[index] = self.estimate(normalized[index])
        with self._lock:
            self.counters["batch.requests"] += 1
            self.counters["batch.queries"] += len(normalized)
        return reports  # type: ignore[return-value]

    # -- design-space optimization ----------------------------------------

    def optimize(self, query: OptimizeQuery,
                 deadline: Optional[Deadline] = None) -> OptimizeReport:
        """Answer one optimize query (see :func:`repro.optimize.
        run_optimize`): map + static-time each (library, vdd), prune
        timing-infeasible frequencies before pricing, price the
        survivors through this engine's caches, return the Pareto
        frontier.  Every priced point lands in the result cache and
        the store, so the optimization warm-starts later single-point
        queries — and vice versa."""
        from repro.optimize import run_optimize

        report = run_optimize(self, query, deadline)
        with self._lock:
            self.counters["optimize.requests"] += 1
            self.counters["optimize.candidates"] += report.n_candidates
            self.counters["optimize.infeasible"] += report.n_infeasible
            self.counters["optimize.frontier"] += len(report.frontier)
        return report

    def library_for(self, key: str, vdd: float):
        """A characterized library through the engine LRU (public form
        of :meth:`_library`, for :mod:`repro.optimize`)."""
        return self._library(key, vdd)

    def netlist_for(self, query: PowerQuery, library=None):
        """The mapped netlist of a (normalized) query through the
        engine LRU."""
        if library is None:
            library = self._library(query.library, query.config.vdd)
        return self._netlist(query, library)

    def cached_report(self, query: PowerQuery
                      ) -> Optional[PowerQuoteReport]:
        """A warm answer for a normalized query, or ``None``.

        Consults the result LRU and the store index only — never
        computes, never blocks on in-flight leaders.  Counter
        bookkeeping matches :meth:`estimate`'s warm path, so /healthz
        accounting is consistent whichever path served a point.
        """
        start = time.perf_counter()
        key = query.query_key
        with self._lock:
            self._revalidate_locked()
            report = self._results.get(key)
            if report is not None:
                self._results.hits += 1
                self.counters["results.hot"] += 1
                return report.with_status("hot",
                                          time.perf_counter() - start)
            self._results.misses += 1
            record = self._store_index.get(key) \
                if self._store is not None else None
        if record is None:
            return None
        from repro.schema import quote_from_record

        report = quote_from_record(record, server_version=__version__)
        with self._lock:
            if registry.generation() == self._generation:
                self._results.put(key, report)
            self.counters["results.store"] += 1
            self.counters["results.hot"] += 1
        return report.with_status("hot", time.perf_counter() - start)

    def record_report(self, query: PowerQuery,
                      report: PowerQuoteReport) -> None:
        """Install a computed answer into the result cache and store.

        The generation guard mirrors :meth:`estimate`'s: a result built
        from definitions that were re-registered mid-computation must
        not enter any cache or the store.
        """
        key = query.query_key
        with self._lock:
            still_fresh = registry.generation() == self._generation
            if still_fresh:
                self._results.put(key, report)
            self.counters["results.cold"] += 1
        if self._store is not None and still_fresh:
            from repro.schema import store_record

            record = store_record(query, report.result, report.elapsed_s)
            self._store.append(record)
            with self._lock:
                if self._generation == registry.generation():
                    self._store_index[key] = record

    # -- the cold path -----------------------------------------------------

    def _cached(self, cache: _LruCache, key: str,
                build: Callable[[], Any]) -> Any:
        """Engine-LRU lookup under the lock; build (slow) outside it.

        Two threads may race to build the same entry; both builds are
        deterministic and content-addressed, so the second ``put`` is
        redundant rather than wrong (the same trade the disk cache in
        :mod:`repro.cache` makes).
        """
        with self._lock:
            value = cache.get(key)
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        value = build()
        with self._lock:
            cache.put(key, value)
        return value

    def _library(self, key: str, vdd: float):
        """A characterized library, engine-LRU over the registry cache."""
        content_key = stable_hash({"library": key, "vdd": vdd})
        return self._cached(self._libraries, content_key,
                            lambda: registry.cached_library(key, vdd))

    def _netlist(self, query: PowerQuery, library):
        """The mapped netlist of a query, LRU-keyed by what shapes it."""
        config = query.config
        content_key = stable_hash({
            "circuit": query.circuit,
            "library": query.library,
            "vdd": config.vdd,
            "synthesize": config.synthesize,
            "mapper_cut_size": config.mapper_cut_size,
            "mapper_cut_limit": config.mapper_cut_limit,
            "mapper_area_rounds": config.mapper_area_rounds,
        })

        def build():
            subject = synthesized_benchmark(query.circuit,
                                            config.synthesize)
            return map_subject(subject, library, config)

        return self._cached(self._netlists, content_key, build)

    def _compute(self, query: PowerQuery,
                 deadline: Optional[Deadline] = None) -> PowerQuoteReport:
        """Synthesize/map/estimate one canonicalized query (cold path).

        Stage for stage the same calls as
        :meth:`repro.api.Session.run`, so the result is bit-identical;
        only the caching around the stages differs.  The deadline is
        checked before each stage (characterize, map, estimate): an
        expired budget aborts before starting the next stage, so an
        aborted query has made no partial writes.
        """
        start = time.perf_counter()
        if deadline is None:
            deadline = Deadline()
        faults.sleep_latency("engine.latency", context=query.circuit)
        config = query.config
        deadline.check("characterize")
        library = self._library(query.library, config.vdd)
        deadline.check("map")
        netlist = self._netlist(query, library)
        deadline.check("estimate")
        flow = estimate_mapped(netlist, config, circuit=query.circuit,
                               library=query.library)
        return PowerQuoteReport.from_flow(
            query, flow, server_version=__version__,
            cache_status="cold",
            elapsed_s=time.perf_counter() - start)

    # -- registration passthroughs ----------------------------------------

    @staticmethod
    def register_blif_circuit(path: str, **kwargs):
        """Register a BLIF netlist on the live engine (see
        :func:`repro.registry.register_blif_circuit`)."""
        return registry.register_blif_circuit(path, **kwargs)
