"""Power-as-a-service: a long-lived estimation engine and its HTTP front.

The batch entry points (``repro table1``, sweeps, :class:`Session`)
pay synthesis, characterization and mapping from scratch per process.
This package keeps all of that **warm**: an :class:`Engine` owns a
:class:`~repro.api.Session` plus LRU caches of characterized libraries,
mapped netlists and finished answers — keyed by the same
``stable_hash`` content keys as :mod:`repro.cache` and the sweep
stores — and coalesces identical in-flight queries, so a hot repeat
query costs a dictionary lookup instead of a synthesis run.

* :class:`Engine` — the in-process service core (usable directly);
* :class:`PowerServer` / :func:`serve` — a stdlib
  ``ThreadingHTTPServer`` speaking the :mod:`repro.schema` wire format
  (``POST /v1/estimate``, ``POST /v1/optimize``,
  ``GET /v1/circuits|libraries|backends|healthz``);
* :class:`FleetSupervisor` / :class:`FleetConfig` — self-healing
  multi-worker serving: N pre-forked workers sharing one port
  (``SO_REUSEPORT`` or inherited FD), heartbeat-monitored, restarted
  with backoff, crash-loop benched, rolled through SIGTERM drains
  (``repro serve --workers N``);
* :class:`Client` — the matching urllib client;
* ``repro serve`` / ``repro query`` / ``repro fleet status`` — the
  CLI trio.

Responses are bit-identical to :meth:`repro.api.Session.run` (locked
by goldens in ``tests/serve/`` and the fleet chaos drills in
``tests/chaos/``).
"""

from repro.serve.client import Client
from repro.serve.engine import Engine
from repro.serve.fleet import FleetConfig, FleetSupervisor
from repro.serve.http import PowerServer, serve

__all__ = ["Engine", "PowerServer", "serve", "Client",
           "FleetSupervisor", "FleetConfig"]
