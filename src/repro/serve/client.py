"""A small urllib client for the estimation service.

Speaks the :mod:`repro.schema` wire format against a running
``repro serve`` endpoint::

    from repro.serve import Client

    client = Client("http://127.0.0.1:8321")
    report = client.estimate("t481", "generalized")
    print(report.result.pt_uw, report.cache_status)

Server-side failures (unknown circuit, schema mismatch, ...) surface
as :class:`~repro.errors.ExperimentError` carrying the server's
``error`` message; transport failures (nothing listening, timeouts)
surface as :class:`~repro.errors.ExperimentError` naming the URL.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.schema import (
    PowerQuery,
    PowerQuoteReport,
    SCHEMA_VERSION,
    batch_request_payload,
    reports_from_batch,
)


class Client:
    """One service endpoint (``base_url`` like ``http://host:port``).

    ``timeout`` is generous by default: a cold paper-config query is a
    real synthesis + 640 K-pattern estimation.
    """

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:
                message = f"HTTP {exc.code}"
            raise ExperimentError(
                f"server at {self.base_url}: {message}") from None
        except urllib.error.URLError as exc:
            raise ExperimentError(
                f"cannot reach estimation server at {url}: "
                f"{exc.reason}") from None

    # -- endpoints ---------------------------------------------------------

    def query(self, query: PowerQuery) -> PowerQuoteReport:
        """POST a prepared :class:`PowerQuery` to ``/v1/estimate``."""
        return PowerQuoteReport.from_dict(
            self._request("/v1/estimate", query.to_dict()))

    def estimate(self, circuit: str, library: str,
                 config: Optional[ExperimentConfig] = None
                 ) -> PowerQuoteReport:
        """Estimate one (circuit, library) cell.

        ``config=None`` sends a config-less query: the *server's*
        default configuration applies (so repeated bare queries hit
        the same cache entry regardless of the client's local
        defaults).
        """
        payload: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "circuit": circuit,
            "library": library,
        }
        if config is not None:
            payload["config"] = config.to_dict()
        return PowerQuoteReport.from_dict(
            self._request("/v1/estimate", payload))

    def estimate_batch(self, queries: List[PowerQuery]
                       ) -> List[PowerQuoteReport]:
        """POST many queries to ``/v1/estimate_batch`` in one round trip.

        The server groups the batch by activity (one simulation per
        circuit/library/pattern-budget group, repriced per operating
        point) and answers in input order — the wire twin of
        :func:`repro.sim.estimator.estimate_many`.
        """
        return reports_from_batch(
            self._request("/v1/estimate_batch",
                          batch_request_payload(queries)))

    def circuits(self) -> List[Dict[str, Any]]:
        """The server's registered circuits (``/v1/circuits``)."""
        return self._request("/v1/circuits")["circuits"]

    def libraries(self) -> List[Dict[str, Any]]:
        """The server's registered libraries (``/v1/libraries``)."""
        return self._request("/v1/libraries")["libraries"]

    def backends(self) -> Dict[str, Any]:
        """The server's estimator backends (``/v1/backends``)."""
        return self._request("/v1/backends")

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/stats payload (``/v1/healthz``)."""
        return self._request("/v1/healthz")
