"""A small urllib client for the estimation service.

Speaks the :mod:`repro.schema` wire format against a running
``repro serve`` endpoint::

    from repro.serve import Client

    client = Client("http://127.0.0.1:8321")
    report = client.estimate("t481", "generalized")
    print(report.result.pt_uw, report.cache_status)

**Failure model.**  Server-side failures surface as
:class:`~repro.errors.ServerError` carrying the HTTP ``status`` and
the server's stable ``error.code`` (``bad_request``, ``overloaded``,
``deadline_exceeded``, ...); transport failures (nothing listening,
connection reset, timeout) surface as :class:`ServerError` with
``status=0``.  :class:`ServerError` subclasses the historical
:class:`~repro.errors.ExperimentError`, so existing handlers keep
working.

**Retries.**  Every endpoint here is idempotent (estimates are
deterministic and content-addressed), so the client transparently
retries exactly the failures where a retry can help:

* connection-level failures (``status=0``): the request may never
  have reached the server — this includes a connection reset or a
  truncated body *mid-response* (``http.client.IncompleteRead`` when
  a fleet worker is SIGKILLed while streaming), not just a refused
  connect;
* 429 (shed by admission control) and 503 (draining/warming): the
  server explicitly asked for a retry, and its ``Retry-After`` hint
  is honored (capped by the policy's backoff cap).  A 503 whose code
  is ``draining`` gets its *first* retry immediately, with no
  backoff: a draining worker means its fleet siblings (or its
  restarted successor) are the right target *right now* — only
  repeat drainings back off.

Everything else (400, 404, 413, 504, 500) fails fast — retrying a
malformed query or a blown deadline cannot succeed.  Backoff is
exponential with decorrelated jitter (:class:`repro.resilience
.RetryPolicy`), and the policy's ``deadline_s`` bounds the *whole*
attempt sequence including sleeps.  ``retry=None`` disables retries.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServerError
from repro.experiments.config import ExperimentConfig
from repro.resilience import RetryPolicy, RetryState, parse_retry_after
from repro.schema import (
    OptimizeQuery,
    OptimizeReport,
    PowerQuery,
    PowerQuoteReport,
    SCHEMA_VERSION,
    batch_request_payload,
    reports_from_batch,
)

#: HTTP statuses the server sends when a retry is expected to help.
RETRYABLE_STATUSES = (429, 503)

#: The default client retry policy: two re-attempts, 50 ms base
#: backoff, 2 s cap, no total deadline beyond the per-attempt timeout.
DEFAULT_RETRY = RetryPolicy()


def _error_fields(payload: Any) -> Dict[str, str]:
    """Code and message from a structured (or legacy) error body."""
    if isinstance(payload, dict):
        error = payload.get("error")
        if isinstance(error, dict):
            return {"code": str(error.get("code", "")),
                    "message": str(error.get("message", ""))}
        if isinstance(error, str):  # pre-0.5 servers
            return {"code": "", "message": error}
    return {"code": "", "message": str(payload)}


class Client:
    """One service endpoint (``base_url`` like ``http://host:port``).

    ``timeout`` is the *per-attempt* socket timeout — generous by
    default, because a cold paper-config query is a real synthesis +
    640 K-pattern estimation.  ``retry`` is the
    :class:`~repro.resilience.RetryPolicy` for transient failures
    (None = fail on the first error).  ``sleep`` and ``rng`` are
    injectable so tests can assert backoff behavior without waiting.
    """

    def __init__(self, base_url: str, timeout: float = 600.0,
                 retry: Optional[RetryPolicy] = DEFAULT_RETRY,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep
        self._rng = rng
        #: The RetryState of the most recent request (None before the
        #: first, or with retries disabled) — tests and benchmarks
        #: read ``attempts`` / ``sleeps`` off it.
        self.last_retry_state: Optional[RetryState] = None

    # -- transport ---------------------------------------------------------

    def _request_once(self, path: str,
                      payload: Optional[Dict[str, Any]],
                      timeout: float) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # HTTPError subclasses URLError: catch it first.
            try:
                fields = _error_fields(
                    json.loads(exc.read().decode("utf-8")))
            except Exception:
                fields = {"code": "", "message": f"HTTP {exc.code}"}
            error = ServerError(
                f"server at {self.base_url}: {fields['message']}"
                + (f" [{fields['code']}]" if fields["code"] else ""),
                status=exc.code, code=fields["code"])
            error.retry_after_s = parse_retry_after(
                exc.headers.get("Retry-After"))
            raise error from None
        except (urllib.error.URLError, ConnectionError,
                http.client.HTTPException, OSError) as exc:
            # HTTPException covers the *mid-response* failures OSError
            # does not: IncompleteRead when the peer closes cleanly
            # after sending a partial body (a worker SIGKILLed while
            # streaming), BadStatusLine on a torn response head.
            reason = getattr(exc, "reason", exc)
            error = ServerError(
                f"cannot reach estimation server at {url}: "
                f"{reason or type(exc).__name__}",
                status=0, code="connection")
            error.retry_after_s = None
            raise error from None

    def _request(self, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Any:
        state = None
        if self.retry is not None:
            state = self.retry.start(sleep=self._sleep, rng=self._rng)
        self.last_retry_state = state
        fast_drain_used = False
        while True:
            timeout = self.timeout
            if state is not None:
                remaining = state.deadline.remaining()
                if remaining is not None:
                    if remaining <= 0:
                        raise ServerError(
                            f"retry deadline exhausted before reaching "
                            f"{self.base_url}{path}",
                            status=0, code="deadline")
                    timeout = min(timeout, remaining)
            try:
                return self._request_once(path, payload, timeout)
            except ServerError as exc:
                retryable = (exc.status == 0
                             or exc.status in RETRYABLE_STATUSES)
                if state is None or not retryable:
                    raise
                hint = getattr(exc, "retry_after_s", None)
                if (exc.status == 503 and exc.code == "draining"
                        and not fast_drain_used):
                    # A draining worker's fleet siblings are live right
                    # now — the first re-attempt goes immediately; only
                    # repeat drainings honor Retry-After/backoff.
                    fast_drain_used = True
                    hint = 0.0
                if not state.retry(hint):
                    raise

    # -- endpoints ---------------------------------------------------------

    def query(self, query: PowerQuery) -> PowerQuoteReport:
        """POST a prepared :class:`PowerQuery` to ``/v1/estimate``."""
        return PowerQuoteReport.from_dict(
            self._request("/v1/estimate", query.to_dict()))

    def estimate(self, circuit: str, library: str,
                 config: Optional[ExperimentConfig] = None,
                 deadline_ms: Optional[float] = None) -> PowerQuoteReport:
        """Estimate one (circuit, library) cell.

        ``config=None`` sends a config-less query: the *server's*
        default configuration applies (so repeated bare queries hit
        the same cache entry regardless of the client's local
        defaults).  ``deadline_ms`` bounds the request server-side
        (504 ``deadline_exceeded`` on expiry).
        """
        payload: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "circuit": circuit,
            "library": library,
        }
        if config is not None:
            payload["config"] = config.to_dict()
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return PowerQuoteReport.from_dict(
            self._request("/v1/estimate", payload))

    def estimate_batch(self, queries: List[PowerQuery]
                       ) -> List[PowerQuoteReport]:
        """POST many queries to ``/v1/estimate_batch`` in one round trip.

        The server groups the batch by activity (one simulation per
        circuit/library/pattern-budget group, repriced per operating
        point) and answers in input order — the wire twin of
        :func:`repro.sim.estimator.estimate_many`.
        """
        return reports_from_batch(
            self._request("/v1/estimate_batch",
                          batch_request_payload(queries)))

    def optimize(self, query: OptimizeQuery) -> OptimizeReport:
        """POST an :class:`OptimizeQuery` to ``/v1/optimize``.

        The server maps + static-times each (library, vdd), prunes
        timing-infeasible points before pricing, prices the survivors
        through its caches and answers with the Pareto frontier.
        """
        return OptimizeReport.from_dict(
            self._request("/v1/optimize", query.to_dict()))

    def circuits(self) -> List[Dict[str, Any]]:
        """The server's registered circuits (``/v1/circuits``)."""
        return self._request("/v1/circuits")["circuits"]

    def libraries(self) -> List[Dict[str, Any]]:
        """The server's registered libraries (``/v1/libraries``)."""
        return self._request("/v1/libraries")["libraries"]

    def backends(self) -> Dict[str, Any]:
        """The server's estimator backends (``/v1/backends``)."""
        return self._request("/v1/backends")

    def healthz(self) -> Dict[str, Any]:
        """The server's full stats payload (``/v1/healthz``)."""
        return self._request("/v1/healthz")

    def live(self) -> Dict[str, Any]:
        """The liveness probe (``/v1/healthz/live``)."""
        return self._request("/v1/healthz/live")

    def ready(self) -> bool:
        """The readiness probe: True iff the server is accepting work.

        Deliberately unretried (a 503 here *is* the answer, not a
        transient failure).
        """
        try:
            self._request_once("/v1/healthz/ready", None, self.timeout)
            return True
        except ServerError as exc:
            if exc.status == 503:
                return False
            raise
