"""The stdlib HTTP front of the estimation engine.

A :class:`PowerServer` is a ``ThreadingHTTPServer`` bound to an
:class:`~repro.serve.engine.Engine`; each request thread parses the
:mod:`repro.schema` wire format and calls into the (thread-safe,
coalescing) engine.  Endpoints:

* ``POST /v1/estimate`` — body is a :class:`~repro.schema.PowerQuery`
  JSON object (``config`` optional: the server's default applies);
  response a :class:`~repro.schema.PowerQuoteReport` object.  An
  optional ``deadline_ms`` field bounds the request server-side.
* ``POST /v1/estimate_batch`` — body is a versioned envelope
  ``{"schema_version": 1, "queries": [...]}`` of up to
  :data:`repro.schema.MAX_BATCH_QUERIES` queries; the engine groups
  them by activity so a grid of operating points over one circuit
  simulates once, and the response mirrors the envelope with one
  report per query in input order.
* ``POST /v1/optimize`` — body is an
  :class:`~repro.schema.OptimizeQuery` (circuit + library/backend/vdd/
  frequency axes + objectives); the engine maps and static-times each
  (library, vdd), prunes timing-infeasible points before pricing, and
  responds with an :class:`~repro.schema.OptimizeReport` carrying the
  Pareto frontier.
* ``GET /v1/circuits`` / ``/v1/libraries`` / ``/v1/backends`` —
  discovery listings from the registries.
* ``GET /v1/healthz`` — full stats: version, uptime, cache occupancy
  (including disk-cache quarantine counters), serve counters, plus
  ``ready`` / ``draining`` / ``inflight``.
* ``GET /v1/healthz/live`` — liveness only: 200 whenever the process
  can answer at all.
* ``GET /v1/healthz/ready`` — readiness: 200 when accepting work,
  503 while warming up or draining (load balancers route on this).

**Failure model.**  Errors come back as structured JSON
``{"error": {"code": "<stable-code>", "message": "<human text>"}}``:

========================  ======  =============================================
code                      status  meaning
========================  ======  =============================================
``bad_request``           400     malformed JSON/schema, unknown names
``not_found``             404     unknown path or method
``payload_too_large``     413     body over :data:`MAX_BODY_BYTES`
``overloaded``            429     admission limit hit — retry after the hint
``draining``              503     server is shutting down gracefully
``deadline_exceeded``     504     the request's ``deadline_ms`` ran out
``internal``              500     unexpected failure
========================  ======  =============================================

429 and 503 carry a ``Retry-After`` header (seconds); well-behaved
clients (:class:`repro.serve.client.Client`) honor it.  Admission is
*bounded*: at most ``max_inflight`` estimate requests run at once and
excess load is shed immediately with 429 instead of queueing without
limit — overload then degrades throughput, not latency.

Graceful shutdown: :meth:`PowerServer.begin_drain` flips readiness
off and rejects new work with 503 while :meth:`PowerServer.wait_idle`
waits for in-flight requests to finish (the CLI wires this to
SIGTERM/SIGINT).

The ``http.drop`` fault-injection point (:mod:`repro.faults`) closes
the connection without a response before a request is processed,
exercising client connection-level retries.

Request logging goes to stderr (the BaseHTTPRequestHandler default)
so ``repro serve ... 2>server.log`` captures an access log.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import __version__, faults
from repro.errors import DeadlineExceeded, ReproError
from repro.schema import (
    OptimizeQuery,
    PowerQuery,
    SCHEMA_VERSION,
    batch_response_payload,
    queries_from_batch,
)
from repro.serve.engine import Engine

#: Maximum accepted request-body size, bytes (a full
#: ``MAX_BATCH_QUERIES`` batch envelope stays well under this;
#: anything larger is a mistake, not a bigger query).
MAX_BODY_BYTES = 1 << 20

#: Default admission limit: estimate requests running at once before
#: the server sheds with 429.  Generous for a single-process engine —
#: the point is a *bound*, not a throttle.
DEFAULT_MAX_INFLIGHT = 32

#: ``Retry-After`` hints (seconds, as header strings).
RETRY_AFTER_OVERLOADED = "0.5"
RETRY_AFTER_DRAINING = "1"


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server`` is the :class:`PowerServer`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> Engine:
        return self.server.engine  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str,
                         retry_after: Optional[str] = None) -> None:
        headers = {"Retry-After": retry_after} if retry_after else None
        self._send_json(status,
                        {"error": {"code": code, "message": message}},
                        headers)

    def _drop_faulted(self, path: str) -> bool:
        """``http.drop``: close the connection without any response."""
        if faults.fire("http.drop", context=path) is None:
            return False
        self.engine.bump("http.dropped")
        self.close_connection = True
        return True

    def _read_body_json(self) -> Optional[Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            self._send_error_json(400, "bad_request",
                                  "bad Content-Length header")
            return None
        if length <= 0:
            self._send_error_json(400, "bad_request",
                                  "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            # The body is never read; a kept-alive connection would
            # parse it as the next request line, so drop the link.
            self.close_connection = True
            self._send_error_json(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, "bad_request",
                                  f"bad JSON body: {exc}")
            return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if self._drop_faulted(path):
            return
        server: "PowerServer" = self.server  # type: ignore[assignment]
        try:
            if path == "/v1/healthz/live":
                self._send_json(200, {"status": "alive",
                                      "version": __version__})
            elif path == "/v1/healthz/ready":
                if server.is_ready():
                    self._send_json(200, {"status": "ready"})
                else:
                    state = "draining" if server.draining else "warming"
                    self._send_error_json(
                        503, "not_ready", f"server is {state}",
                        retry_after=RETRY_AFTER_DRAINING)
            elif path in ("/v1/healthz", "/healthz"):
                payload = self.engine.stats()
                payload["status"] = "ok"
                payload["schema_version"] = SCHEMA_VERSION
                payload["ready"] = server.is_ready()
                payload["draining"] = server.draining
                payload["inflight"] = server.inflight
                payload["max_inflight"] = server.max_inflight
                if server.worker_meta is not None:
                    payload["worker"] = dict(server.worker_meta)
                self._send_json(200, payload)
            elif path == "/v1/circuits":
                self._send_json(200, {"circuits": self.engine.circuits()})
            elif path == "/v1/libraries":
                self._send_json(200, {"libraries": self.engine.libraries()})
            elif path == "/v1/backends":
                self._send_json(200, self.engine.backends())
            else:
                self._send_error_json(404, "not_found",
                                      f"unknown path {path!r}")
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, "internal", str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if self._drop_faulted(path):
            return
        if path not in ("/v1/estimate", "/v1/estimate_batch",
                        "/v1/optimize"):
            self._send_error_json(404, "not_found",
                                  f"unknown path {path!r}")
            return
        server: "PowerServer" = self.server  # type: ignore[assignment]
        admission = server.try_begin_request()
        if admission == "draining":
            self.engine.bump("http.rejected_draining")
            self._send_error_json(
                503, "draining", "server is draining for shutdown",
                retry_after=RETRY_AFTER_DRAINING)
            return
        if admission == "overloaded":
            self.engine.bump("http.shed")
            self._send_error_json(
                429, "overloaded",
                f"admission limit of {server.max_inflight} in-flight "
                f"requests reached; retry after backoff",
                retry_after=RETRY_AFTER_OVERLOADED)
            return
        try:
            data = self._read_body_json()
            if data is None:
                return
            # Mid-request SIGKILL point for fleet chaos drills: the
            # request is admitted and read, then the worker dies with
            # no response — the client must retry on another worker.
            faults.maybe_kill9(context=path)
            try:
                if path == "/v1/estimate":
                    query = PowerQuery.from_dict(
                        data, default_config=self.engine.session.config)
                    payload = self.engine.estimate(query).to_dict()
                elif path == "/v1/optimize":
                    optimize_query = OptimizeQuery.from_dict(
                        data, default_config=self.engine.session.config)
                    payload = self.engine.optimize(optimize_query).to_dict()
                else:
                    queries = queries_from_batch(
                        data, default_config=self.engine.session.config)
                    payload = batch_response_payload(
                        self.engine.estimate_batch(queries))
            except DeadlineExceeded as exc:
                self._send_error_json(504, "deadline_exceeded", str(exc))
                return
            except ReproError as exc:
                self._send_error_json(400, "bad_request", str(exc))
                return
            except Exception as exc:
                self._send_error_json(500, "internal", str(exc))
                return
            self._send_json(200, payload)
        finally:
            server.end_request()


class PowerServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Engine`.

    ``port=0`` binds an OS-assigned free port (``.url`` reports the
    real one) — how tests and the CI smoke job avoid collisions.

    ``max_inflight`` bounds concurrently-processed estimate requests
    (excess is shed with 429); ``None`` disables admission control.
    The server starts *not ready* (``/v1/healthz/ready`` is 503) until
    :meth:`mark_ready` — :func:`serve` calls it for you, the CLI calls
    it after warmup.

    ``sock`` adopts an already-listening socket instead of binding
    ``address`` — how fleet workers share one service port (an
    ``SO_REUSEPORT`` sibling socket, or the supervisor's inherited
    listen FD).  The adopting server takes ownership: ``server_close``
    closes it.
    """

    daemon_threads = True

    def __init__(self, engine: Engine,
                 address: Tuple[str, int] = ("127.0.0.1", 0),
                 max_inflight: Optional[int] = DEFAULT_MAX_INFLIGHT,
                 sock: Optional[socket.socket] = None):
        if sock is None:
            super().__init__(address, _Handler)
        else:
            super().__init__(sock.getsockname()[:2], _Handler,
                             bind_and_activate=False)
            # Swap the unbound socket TCPServer built for the adopted,
            # already-listening one, then finish HTTPServer.server_bind
            # bookkeeping (server_name/server_port) without rebinding.
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()
            host, port = self.server_address[:2]
            self.server_name = socket.getfqdn(host)
            self.server_port = port
        self.engine = engine
        self.max_inflight = max_inflight
        self.draining = False
        #: Optional identity block merged into ``/v1/healthz`` — fleet
        #: workers set it to ``{"slot": ..., "pid": ...}`` so the
        #: supervisor's aggregation can label per-worker rows.
        self.worker_meta: Optional[Dict[str, Any]] = None
        self._ready = False
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    # -- readiness / admission / drain ------------------------------------

    def mark_ready(self) -> None:
        """Declare warmup finished: ``/v1/healthz/ready`` turns 200."""
        with self._state_lock:
            self._ready = True

    def is_ready(self) -> bool:
        with self._state_lock:
            return self._ready and not self.draining

    def try_begin_request(self) -> str:
        """Admit one estimate request: ``"ok"``/``"draining"``/
        ``"overloaded"``.  ``"ok"`` must be paired with
        :meth:`end_request`."""
        with self._state_lock:
            if self.draining:
                return "draining"
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                return "overloaded"
            self._inflight += 1
            self._idle.clear()
            return "ok"

    def end_request(self) -> None:
        with self._state_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.set()

    def begin_drain(self) -> None:
        """Stop admitting work; in-flight requests keep running."""
        with self._state_lock:
            self.draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight (True) or timeout."""
        return self._idle.wait(timeout)


def serve(engine: Optional[Engine] = None, host: str = "127.0.0.1",
          port: int = 0,
          max_inflight: Optional[int] = DEFAULT_MAX_INFLIGHT,
          ready: bool = True) -> PowerServer:
    """Bind a :class:`PowerServer` (not yet serving).

    The caller decides how to run it: ``serve_forever()`` for the CLI,
    a background thread for tests/embedders::

        server = serve(Engine(), port=8321)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()

    ``ready=False`` leaves the readiness probe at 503 until the caller
    finishes warmup and calls :meth:`PowerServer.mark_ready`.
    """
    server = PowerServer(engine if engine is not None else Engine(),
                         (host, port), max_inflight=max_inflight)
    if ready:
        server.mark_ready()
    return server
