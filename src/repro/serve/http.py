"""The stdlib HTTP front of the estimation engine.

A :class:`PowerServer` is a ``ThreadingHTTPServer`` bound to an
:class:`~repro.serve.engine.Engine`; each request thread parses the
:mod:`repro.schema` wire format and calls into the (thread-safe,
coalescing) engine.  Endpoints:

* ``POST /v1/estimate`` — body is a :class:`~repro.schema.PowerQuery`
  JSON object (``config`` optional: the server's default applies);
  response a :class:`~repro.schema.PowerQuoteReport` object.
* ``POST /v1/estimate_batch`` — body is a versioned envelope
  ``{"schema_version": 1, "queries": [...]}`` of up to
  :data:`repro.schema.MAX_BATCH_QUERIES` queries; the engine groups
  them by activity so a grid of operating points over one circuit
  simulates once, and the response mirrors the envelope with one
  report per query in input order.
* ``GET /v1/circuits`` / ``/v1/libraries`` / ``/v1/backends`` —
  discovery listings from the registries.
* ``GET /v1/healthz`` — liveness: version, uptime, cache occupancy
  and serve counters.

Errors come back as ``{"error": "<message>"}`` with 400 (bad request:
malformed JSON, unknown names, schema mismatch), 404 (unknown path or
method) or 500 (unexpected failure).  Request logging goes to stderr
(the BaseHTTPRequestHandler default) so ``repro serve ... 2>server.log``
captures an access log.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.errors import ReproError
from repro.schema import (
    PowerQuery,
    SCHEMA_VERSION,
    batch_response_payload,
    queries_from_batch,
)
from repro.serve.engine import Engine

#: Maximum accepted request-body size, bytes (a full
#: ``MAX_BATCH_QUERIES`` batch envelope stays well under this;
#: anything larger is a mistake, not a bigger query).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server`` is the :class:`PowerServer`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> Engine:
        return self.server.engine  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body_json(self) -> Optional[Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length header")
            return None
        if length <= 0:
            self._send_error_json(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            # The body is never read; a kept-alive connection would
            # parse it as the next request line, so drop the link.
            self.close_connection = True
            self._send_error_json(400, "request body too large")
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path in ("/v1/healthz", "/healthz"):
                payload = self.engine.stats()
                payload["status"] = "ok"
                payload["schema_version"] = SCHEMA_VERSION
                self._send_json(200, payload)
            elif path == "/v1/circuits":
                self._send_json(200, {"circuits": self.engine.circuits()})
            elif path == "/v1/libraries":
                self._send_json(200, {"libraries": self.engine.libraries()})
            elif path == "/v1/backends":
                self._send_json(200, self.engine.backends())
            else:
                self._send_error_json(404, f"unknown path {path!r}")
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/v1/estimate", "/v1/estimate_batch"):
            self._send_error_json(404, f"unknown path {path!r}")
            return
        data = self._read_body_json()
        if data is None:
            return
        try:
            if path == "/v1/estimate":
                query = PowerQuery.from_dict(
                    data, default_config=self.engine.session.config)
                payload = self.engine.estimate(query).to_dict()
            else:
                queries = queries_from_batch(
                    data, default_config=self.engine.session.config)
                payload = batch_response_payload(
                    self.engine.estimate_batch(queries))
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        except Exception as exc:
            self._send_error_json(500, str(exc))
            return
        self._send_json(200, payload)


class PowerServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Engine`.

    ``port=0`` binds an OS-assigned free port (``.url`` reports the
    real one) — how tests and the CI smoke job avoid collisions.
    """

    daemon_threads = True

    def __init__(self, engine: Engine,
                 address: Tuple[str, int] = ("127.0.0.1", 0)):
        super().__init__(address, _Handler)
        self.engine = engine

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(engine: Optional[Engine] = None, host: str = "127.0.0.1",
          port: int = 0) -> PowerServer:
    """Bind a :class:`PowerServer` (not yet serving).

    The caller decides how to run it: ``serve_forever()`` for the CLI,
    a background thread for tests/embedders::

        server = serve(Engine(), port=8321)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    return PowerServer(engine if engine is not None else Engine(),
                       (host, port))
