"""Deterministic fault injection for chaos testing.

The resilience layer (deadlines, retries, load shedding, cache
quarantine, worker-crash tolerance) is only trustworthy if its failure
paths actually run, so production code carries a handful of *injection
points* that fire faults on demand:

* ``cache.corrupt_read`` — :meth:`repro.cache.DiskCache.get` garbles
  the bytes it read from disk, exercising the checksum/quarantine
  path;
* ``worker.crash`` — a sweep worker process ``os._exit``\\ s before
  executing a task group, exercising the crash-retry/poison path of
  :func:`repro.experiments.parallel.parallel_map_stream` (never fires
  in the main process — a chaos run must not kill the harness);
* ``engine.latency`` — :class:`repro.serve.engine.Engine` sleeps
  ``ms`` milliseconds before its pipeline stages, exercising
  per-request deadlines and overload shedding;
* ``http.drop`` — the HTTP handler closes the connection without a
  response, exercising client retries;
* ``worker.kill9`` — a *fleet worker* process SIGKILLs itself
  mid-request (no drain, no cleanup — the closest thing to an OOM
  kill), exercising the supervisor's restart path and the client's
  connection-level retry against the surviving workers (never fires
  in the main process, so a single-process ``repro serve`` is
  immune);
* ``supervisor.restart_storm`` — the fleet supervisor's monitor loop
  hard-kills one of its own healthy workers per firing, exercising
  restart backoff and crash-loop benching from the supervising side.

Faults are configured by the ``REPRO_FAULTS`` environment variable (or
programmatically via :func:`activate`), a semicolon-separated list of
clauses::

    REPRO_FAULTS="worker.crash:times=1,match=C1908;engine.latency:ms=50,times=inf"

Each clause is ``point[:option=value,...]`` with options

* ``times`` — how often the fault fires (default 1; ``inf`` =
  unlimited);
* ``match`` — substring the injection context must contain (the
  context is e.g. ``circuit/library`` for worker crashes,
  ``namespace/key`` for cache reads);
* ``ms`` — latency, for ``engine.latency``.

Firing is **deterministic**, not probabilistic: the first ``times``
matching calls fire, the rest do not — chaos tests can therefore
assert exact outcomes (one crash, one corruption) and bit-identical
results.  With ``REPRO_FAULTS_DIR`` set, fire tickets are claimed via
``O_CREAT | O_EXCL`` files in that directory, so a budget of
``times=1`` holds *across processes* (a crashed worker cannot re-arm
its own fault) and every fired fault is appended to
``<dir>/faults.log`` as a JSON line for post-mortem/CI artifacts.
Without the directory, counting is per-process (each forked worker
has its own budget — set the directory for multi-process chaos runs).

The disabled path is one dict lookup against an empty rule table, so
injection points are free in production.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError

#: Environment variable holding the fault spec (empty/unset = no faults).
ENV_FAULTS = "REPRO_FAULTS"
#: Environment variable naming the cross-process ticket/log directory.
ENV_FAULTS_DIR = "REPRO_FAULTS_DIR"

#: Every injection point production code calls into.
FAULT_POINTS = (
    "cache.corrupt_read",
    "worker.crash",
    "engine.latency",
    "http.drop",
    "worker.kill9",
    "supervisor.restart_storm",
)

#: Marker appended by :func:`corrupt` — greppable in quarantined files.
CORRUPTION_MARKER = "\x00REPRO-FAULT-CORRUPTED"


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause of a fault spec."""

    point: str
    times: Optional[int] = 1   # None = unlimited
    match: str = ""
    ms: float = 0.0


def _parse_clause(clause: str) -> FaultRule:
    point, _, options_text = clause.partition(":")
    point = point.strip()
    if point not in FAULT_POINTS:
        raise ExperimentError(
            f"unknown fault point {point!r}; choose from "
            f"{', '.join(FAULT_POINTS)}")
    times: Optional[int] = 1
    match = ""
    ms = 0.0
    if options_text:
        for option in options_text.split(","):
            name, sep, value = option.partition("=")
            name = name.strip()
            if not sep:
                raise ExperimentError(
                    f"bad fault option {option!r} in {clause!r} "
                    f"(expected name=value)")
            if name == "times":
                times = None if value.strip() == "inf" else int(value)
                if times is not None and times < 1:
                    raise ExperimentError(
                        f"fault times must be >= 1 or inf, got {value!r}")
            elif name == "match":
                match = value
            elif name == "ms":
                ms = float(value)
                if ms < 0:
                    raise ExperimentError(
                        f"fault ms must be >= 0, got {value!r}")
            else:
                raise ExperimentError(
                    f"unknown fault option {name!r} in {clause!r} "
                    f"(options: times, match, ms)")
    return FaultRule(point=point, times=times, match=match, ms=ms)


def parse_spec(spec: str) -> Tuple[FaultRule, ...]:
    """Parse a ``REPRO_FAULTS`` spec string into its rules."""
    rules = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if clause:
            rules.append(_parse_clause(clause))
    return tuple(rules)


class FaultPlan:
    """A parsed fault spec plus its firing state.

    Thread-safe; the per-rule budget is claimed under a lock (or, with
    ``state_dir``, via exclusive ticket files shared by every process
    reading the same spec).
    """

    def __init__(self, rules: Tuple[FaultRule, ...],
                 state_dir: Optional[str] = None, *, spec: str = ""):
        self.spec = spec
        self.rules = rules
        self.state_dir = state_dir
        self.fired: List[Dict] = []
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {}
        self._by_point: Dict[str, List[Tuple[int, FaultRule]]] = {}
        for index, rule in enumerate(rules):
            self._by_point.setdefault(rule.point, []).append((index, rule))

    @classmethod
    def from_spec(cls, spec: str,
                  state_dir: Optional[str] = None) -> "FaultPlan":
        return cls(parse_spec(spec), state_dir, spec=spec)

    def active(self) -> bool:
        return bool(self.rules)

    # -- ticket claiming ---------------------------------------------------

    def _claim_local(self, index: int, rule: FaultRule) -> bool:
        with self._lock:
            count = self._counts.get(index, 0)
            if rule.times is not None and count >= rule.times:
                return False
            self._counts[index] = count + 1
            return True

    def _claim_shared(self, index: int, rule: FaultRule) -> bool:
        """Claim one of the rule's ``times`` tickets via O_EXCL files."""
        assert self.state_dir is not None
        if rule.times is None:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        for ticket in range(rule.times):
            path = os.path.join(self.state_dir,
                                f"ticket-{index}-{rule.point}-{ticket}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def _log(self, entry: Dict) -> None:
        self.fired.append(entry)
        if self.state_dir is None:
            return
        try:
            os.makedirs(self.state_dir, exist_ok=True)
            line = json.dumps(entry, sort_keys=True) + "\n"
            with open(os.path.join(self.state_dir, "faults.log"), "a",
                      encoding="utf-8") as handle:
                handle.write(line)
        except OSError:
            pass  # a fault log must never take the workload down with it

    def fire(self, point: str, context: str = "") -> Optional[FaultRule]:
        """Claim and log one firing of ``point``, or return None.

        The first rule for the point whose ``match`` is a substring of
        ``context`` (and whose budget is not exhausted) fires.
        """
        for index, rule in self._by_point.get(point, ()):
            if rule.match and rule.match not in context:
                continue
            claimed = self._claim_shared(index, rule) \
                if self.state_dir is not None \
                else self._claim_local(index, rule)
            if not claimed:
                continue
            self._log({"point": point, "context": context,
                       "pid": os.getpid(), "ms": rule.ms,
                       "time": time.time()})
            return rule
        return None


#: The inert plan served when no faults are configured.
_EMPTY_PLAN = FaultPlan((), None)

_PLAN: Optional[FaultPlan] = None
_PLAN_OVERRIDE: Optional[FaultPlan] = None
_PLAN_LOCK = threading.Lock()


def current_plan() -> FaultPlan:
    """The active plan: a programmatic override, else ``REPRO_FAULTS``.

    The environment is re-read whenever the spec or state directory
    changed, so tests can monkeypatch the variables at any point; the
    parsed plan (and its firing counters) is reused while they are
    stable.
    """
    global _PLAN
    if _PLAN_OVERRIDE is not None:
        return _PLAN_OVERRIDE
    spec = os.environ.get(ENV_FAULTS, "")
    if not spec:
        return _EMPTY_PLAN
    state_dir = os.environ.get(ENV_FAULTS_DIR) or None
    with _PLAN_LOCK:
        if (_PLAN is None or _PLAN.spec != spec
                or _PLAN.state_dir != state_dir):
            _PLAN = FaultPlan.from_spec(spec, state_dir)
        return _PLAN


def activate(spec: str, state_dir: Optional[str] = None) -> FaultPlan:
    """Install a programmatic plan that overrides the environment.

    Returns the plan so callers can inspect ``plan.fired``.  Call
    :func:`deactivate` to drop it (tests should do so in teardown).
    """
    global _PLAN_OVERRIDE
    _PLAN_OVERRIDE = FaultPlan.from_spec(spec, state_dir)
    return _PLAN_OVERRIDE


def deactivate() -> None:
    """Remove any programmatic override (environment faults resume)."""
    global _PLAN_OVERRIDE
    _PLAN_OVERRIDE = None


# -- injection-point helpers ---------------------------------------------------

def fire(point: str, context: str = "") -> Optional[FaultRule]:
    """Fire ``point`` against the current plan (None when inactive)."""
    return current_plan().fire(point, context)


def sleep_latency(point: str, context: str = "") -> float:
    """Sleep the rule's ``ms`` if ``point`` fires; returns seconds slept."""
    rule = fire(point, context)
    if rule is None or rule.ms <= 0:
        return 0.0
    seconds = rule.ms / 1000.0
    time.sleep(seconds)
    return seconds


def corrupt(text: str) -> str:
    """Deterministically garble cached text (truncate + marker).

    The result is invalid JSON for any real cache entry, so the read
    path sees exactly what a torn write or bad sector produces.
    """
    return text[: len(text) // 2] + CORRUPTION_MARKER


def maybe_kill9(context: str = "") -> None:
    """``worker.kill9`` injection point: SIGKILL this *worker* process.

    Refuses to fire in the main process — the point simulates a fleet
    worker dying mid-request (OOM kill, segfault), and killing the
    supervisor or a single-process server would take the harness down
    instead of exercising recovery.  SIGKILL (not ``os._exit``) so
    even C-level cleanup is skipped: in-flight connections reset,
    heartbeats stop, locks stay behind.
    """
    plan = current_plan()
    if not plan.active():
        return
    if multiprocessing.current_process().name == "MainProcess":
        return
    if plan.fire("worker.kill9", context) is not None:
        os.kill(os.getpid(), 9)


def maybe_crash_worker(context: str = "") -> None:
    """``worker.crash`` injection point: hard-exit a *worker* process.

    Refuses to fire in the main process — a chaos spec must crash pool
    workers, not the harness (or the server) running the sweep.
    """
    plan = current_plan()
    if not plan.active():
        return
    if multiprocessing.current_process().name == "MainProcess":
        return
    if plan.fire("worker.crash", context) is not None:
        # A real crash: no cleanup, no exception, no exit handlers.
        os._exit(23)
