"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction stack with one handler
while still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceModelError(ReproError):
    """Invalid device parameters or operating point request."""


class NetlistError(ReproError):
    """Malformed circuit netlist (unknown node, duplicate element, ...)."""


class ConvergenceError(ReproError):
    """The nonlinear solver failed to converge.

    Carries the last residual so callers can decide whether the partial
    answer is usable.
    """

    def __init__(self, message: str, residual: float = float("nan")):
        super().__init__(message)
        self.residual = residual


class TopologyError(ReproError):
    """Ill-formed switch network (e.g. PU and PD not complementary)."""


class LibraryError(ReproError):
    """Problems building or querying a gate library."""


class SynthesisError(ReproError):
    """Errors in AIG construction, optimization or technology mapping."""


class MappingError(SynthesisError):
    """The technology mapper could not cover the subject graph."""


class SimulationError(ReproError):
    """Gate-level simulation failures (width mismatch, missing nets)."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class DeadlineExceeded(ReproError):
    """A request's time budget ran out before the work finished.

    Raised between pipeline stages (never mid-kernel), so an aborted
    query has done no partial writes.  ``stage`` names the stage that
    would have run next.
    """

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message)
        self.stage = stage


class WorkerCrashError(ReproError):
    """A pool worker process died (hard-killed, OOM, segfault) while
    executing a task, and retries on fresh workers kept dying too."""


class ServerError(ExperimentError):
    """An estimation-server request failed.

    Carries the HTTP ``status`` and the server's stable ``error.code``
    so callers (the retrying client, benchmarks, tests) can branch on
    the failure class instead of parsing messages.  ``status=0`` means
    the server was never reached (connection-level failure).
    """

    def __init__(self, message: str, *, status: int = 0, code: str = ""):
        super().__init__(message)
        self.status = status
        self.code = code
