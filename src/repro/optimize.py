"""Design-space optimization: the Pareto frontier over operating points.

The source paper explores the power–performance trade-off of ambipolar
CNT logic by hand-picking (vdd, frequency) points per library; the
follow-up literature compares designs by delay and power-delay product.
This module turns that exploration into a service primitive: given a
circuit and axes (library x backend x vdd x frequency), it

1. maps the circuit once per (library, backend-independent) supply and
   runs :func:`repro.timing.timing_report` on the mapping,
2. **prunes timing-infeasible frequencies before pricing** — a point
   whose clock period is shorter than the critical path is never
   simulated or priced,
3. prices the surviving grid through the engine's caches — cached
   points are reused verbatim; for the ``bitsim`` backend all misses of
   one (library, vdd) group are priced with a single
   :func:`repro.sim.estimator.estimate_many` call over one simulation,
4. returns the non-dominated set under the query's objectives with
   per-point provenance (the same ``query_key`` a ``/v1/estimate`` of
   that point would carry, and how this serving obtained it).

Every priced point is written back into the engine's result cache and
its store, so an optimization warm-starts later single-point queries
and a warm rerun of the same optimization re-simulates nothing (the
tests assert the activity cache's simulation counter does not move).

Dominance is the standard Pareto relation with per-objective
directions (:data:`repro.schema.OPTIMIZE_OBJECTIVES`): point A
dominates B iff A is at least as good in every objective and strictly
better in at least one.  Points with identical objective vectors do
not dominate each other — both survive.  The frontier is returned in
a deterministic order: ascending by the direction-normalized objective
vector, then by (library, backend, vdd, frequency).
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__, registry
from repro.experiments.flow import flow_from_power_report
from repro.resilience import Deadline
from repro.schema import (
    OPTIMIZE_OBJECTIVES,
    FrontierPoint,
    OptimizeQuery,
    OptimizeReport,
    PowerQuery,
    PowerQuoteReport,
)
from repro.sim.activity import simulation_stats
from repro.sim.backends import BITSIM, get_backend
from repro.sim.estimator import estimate_many
from repro.timing import TimingReport, timing_report

if TYPE_CHECKING:  # pragma: no cover - engine imports this module's users
    from repro.serve.engine import Engine


# -- objectives ---------------------------------------------------------------

_METRICS = {
    "power": lambda p: p.pt_w,
    "energy": lambda p: p.energy_per_cycle,
    "pdp": lambda p: p.pdp,
    "edp": lambda p: p.edp_js,
    "delay": lambda p: p.delay_ns,
    "vdd": lambda p: p.vdd,
    "frequency": lambda p: p.frequency,
    # An unbounded fmax (zero-delay circuit) is better than any finite
    # one under the "max" direction.
    "fmax": lambda p: p.fmax_hz if p.fmax_hz is not None else math.inf,
}


def objective_value(point: FrontierPoint, objective: str) -> float:
    """The raw metric an objective reads off a point."""
    return _METRICS[objective](point)


def normalized_value(point: FrontierPoint, objective: str) -> float:
    """The metric folded to minimize-direction (max objectives negate)."""
    value = objective_value(point, objective)
    return -value if OPTIMIZE_OBJECTIVES[objective] == "max" else value


def _sort_key(point: FrontierPoint, objectives: Sequence[str]):
    return (tuple(normalized_value(point, o) for o in objectives),
            point.library, point.backend, point.vdd, point.frequency)


def pareto_frontier(points: Sequence[FrontierPoint],
                    objectives: Sequence[str]
                    ) -> Tuple[List[FrontierPoint], int]:
    """The non-dominated subset, deterministically ordered.

    Returns ``(frontier, n_dominated)``.  Ties (identical objective
    vectors) all survive; dominance is strict in at least one
    objective.  Ordering: ascending direction-normalized objective
    tuple, then (library, backend, vdd, frequency).
    """
    if not points:
        return [], 0
    ordered = sorted(points, key=lambda p: _sort_key(p, objectives))
    vectors = np.array([[normalized_value(point, objective)
                         for objective in objectives]
                        for point in ordered])
    n = len(ordered)
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            # Transitivity: whatever a dominated point dominates is
            # also dominated by its (kept) dominator.
            continue
        vector = vectors[i]
        dominated = ((vectors >= vector).all(axis=1)
                     & (vectors > vector).any(axis=1))
        keep &= ~dominated
    frontier = [point for point, kept in zip(ordered, keep) if kept]
    return frontier, n - len(frontier)


# -- point construction -------------------------------------------------------


def frontier_point(quote: PowerQuoteReport, vdd: float, frequency: float,
                   library: str, backend: str) -> FrontierPoint:
    """Lift one priced quote into a frontier candidate.

    All metrics derive from the quote's flow result, so a frontier
    point and the ``/v1/estimate`` answer of the same operating point
    agree float for float.
    """
    flow = quote.result
    period = 1.0 / frequency
    return FrontierPoint(
        library=library,
        backend=backend,
        vdd=vdd,
        frequency=frequency,
        gate_count=flow.gate_count,
        delay_ns=flow.delay_s / 1e-9,
        fmax_hz=(1.0 / flow.delay_s) if flow.delay_s > 0.0 else None,
        slack_ns=(period - flow.delay_s) / 1e-9,
        pd_w=flow.pd_w,
        ps_w=flow.ps_w,
        pg_w=flow.pg_w,
        pt_w=flow.pt_w,
        energy_per_cycle=flow.pt_w / frequency,
        pdp=flow.pt_w * flow.delay_s,
        edp_js=flow.edp_js,
        query_key=quote.query_key,
        cache_status=quote.cache_status,
    )


# -- evaluation ---------------------------------------------------------------


def normalize_query(query: OptimizeQuery) -> OptimizeQuery:
    """Canonicalize names so aliases share cache identity.

    Circuit and library names resolve through the registry; backends
    are validated against the backend registry.  Aliases that
    canonicalize to the same library collapse to one axis entry.
    """
    for backend in query.backends:
        get_backend(backend)  # raises with the known choices
    return replace(
        query,
        circuit=registry.canonical_circuit(query.circuit),
        libraries=tuple(registry.canonical_library(key)
                        for key in query.libraries))


def _price_group(engine: "Engine", netlist, queries: List[PowerQuery],
                 backend: str, deadline: Deadline
                 ) -> List[PowerQuoteReport]:
    """Price one (library, backend, vdd) group of feasible points.

    Engine-cached points (result LRU or store) are served as-is; the
    misses are computed — for ``bitsim`` all at once with a single
    :func:`estimate_many` over one (cached) simulation, otherwise one
    :meth:`Engine.estimate` per point — and recorded back into the
    engine's result cache and store.
    """
    quotes: List[Optional[PowerQuoteReport]] = [None] * len(queries)
    misses: List[int] = []
    for index, query in enumerate(queries):
        cached = engine.cached_report(query)
        if cached is not None:
            quotes[index] = cached
        else:
            misses.append(index)
    if not misses:
        return quotes  # type: ignore[return-value]
    deadline.check("estimate")
    if backend != BITSIM:
        for index in misses:
            quotes[index] = engine.estimate(queries[index],
                                            deadline=deadline)
        return quotes  # type: ignore[return-value]
    config = queries[misses[0]].config
    start = time.perf_counter()
    stats = simulation_stats(netlist, config.n_patterns, config.seed,
                             config.state_patterns,
                             kernel=config.sim_kernel)
    deadline.check("price")
    reports = estimate_many(
        netlist, stats,
        [queries[index].config.power_parameters for index in misses])
    elapsed_each = (time.perf_counter() - start) / len(misses)
    for index, report in zip(misses, reports):
        query = queries[index]
        flow = flow_from_power_report(report, query.config,
                                      circuit=query.circuit,
                                      library=query.library)
        quote = PowerQuoteReport.from_flow(
            query, flow, server_version=__version__,
            cache_status="cold", elapsed_s=elapsed_each)
        engine.record_report(query, quote)
        quotes[index] = quote
    return quotes  # type: ignore[return-value]


def run_optimize(engine: "Engine", query: OptimizeQuery,
                 deadline: Optional[Deadline] = None) -> OptimizeReport:
    """Evaluate one optimize query against a serving engine.

    Walks the (library, backend, vdd) combinations; each maps once,
    runs (cached) static timing once, prunes infeasible frequencies
    *before* any pricing, prices the survivors through the engine's
    caches and finally keeps the non-dominated set.  The deadline is
    checked between stages, exactly like :meth:`Engine.estimate`.
    """
    start = time.perf_counter()
    query = normalize_query(query)
    if deadline is None:
        deadline = Deadline.after_ms(query.deadline_ms)
    candidates: List[FrontierPoint] = []
    n_infeasible = 0
    for library_key in query.libraries:
        for backend in query.backends:
            for vdd in query.vdds:
                config = replace(query.config, vdd=vdd, backend=backend,
                                 frequency=query.frequencies[0])
                probe = PowerQuery(circuit=query.circuit,
                                   library=library_key, config=config)
                deadline.check("characterize")
                library = engine.library_for(library_key, vdd)
                deadline.check("map")
                netlist = engine.netlist_for(probe, library)
                deadline.check("timing")
                timing: TimingReport = timing_report(netlist)
                feasible = [frequency for frequency in query.frequencies
                            if timing.feasible(frequency)]
                n_infeasible += len(query.frequencies) - len(feasible)
                if not feasible:
                    continue
                point_queries = [
                    PowerQuery(circuit=query.circuit, library=library_key,
                               config=replace(config, frequency=frequency))
                    for frequency in feasible]
                quotes = _price_group(engine, netlist, point_queries,
                                      backend, deadline)
                for frequency, quote in zip(feasible, quotes):
                    candidates.append(frontier_point(
                        quote, vdd, frequency, library_key, backend))
    frontier, n_dominated = pareto_frontier(candidates, query.objectives)
    return OptimizeReport(
        circuit=query.circuit,
        objectives=query.objectives,
        frontier=tuple(frontier),
        n_candidates=query.n_candidates,
        n_infeasible=n_infeasible,
        n_dominated=n_dominated,
        server_version=__version__,
        elapsed_s=time.perf_counter() - start,
    )
