"""Registries of named, discoverable library and circuit factories.

Every place the reproduction needs a cell library or a benchmark
circuit by name — the Table 1 rows and columns, the sweep ``library``
and ``circuits`` axes, the CLI flags, the :class:`repro.api.Session`
front door, the :mod:`repro.serve` estimation server — resolves it
here.  Both kinds are *registered*, not hardwired: adding a fourth
technology to the comparison, or a thirteenth benchmark netlist, is one
``register_*`` call with no edits to ``experiments/`` or ``sweep/``.

**Libraries.**  A factory is a callable ``factory(vdd) -> Library``:
``vdd=None`` builds the library at its technology's native supply, any
other value re-characterizes it at that operating point (the
supply-sweep path, conventionally via
:meth:`TechnologyParams.with_vdd`).  Keys are the canonical library
names (also the ``Library.name`` of what the factory builds); aliases
are short spellings accepted anywhere a key is (``"generalized"`` for
``"cntfet-generalized"``, ...).

**Circuits.**  A factory is a callable ``build() -> Aig``.  The 12
paper benchmarks of Table 1 are registered by
:mod:`repro.circuits.suite` (which is now a thin view over this
registry) together with the paper's reference rows;
:func:`register_blif_circuit` registers an arbitrary user netlist from
a BLIF file, after which it flows through every Session / CLI / sweep
/ serve path exactly like a built-in benchmark.

The three paper libraries plus the hybrid pass-transistor demo library
(after Hu et al., arXiv:2002.01932) are registered at import time;
``available_libraries()`` / ``available_circuits()`` list whatever is
registered right now.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.devices.parameters import CMOS_32NM, CNTFET_32NM, TechnologyParams
from repro.errors import ExperimentError
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library, conventional_cntfet_library
from repro.gates.hybrid_pass import HYBRID_PASS, hybrid_pass_library
from repro.gates.library import Library
from repro.gates.np_dynamic import NP_DYNAMIC, np_dynamic_library

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.synth.aig import Aig

#: Library keys used throughout the experiments (historically defined
#: in :mod:`repro.circuits.suite`, which still re-exports them).
GENERALIZED = "cntfet-generalized"
CONVENTIONAL = "cntfet-conventional"
CMOS = "cmos"

#: Factory signature: build the library, optionally at a non-native vdd.
LibraryFactory = Callable[[Optional[float]], Library]
#: Factory signature: build a benchmark circuit.
CircuitFactory = Callable[[], "Aig"]


# -- generic name/alias registry core -----------------------------------------

#: Bumped on every (re/un)registration of either kind.  Name-keyed
#: caches outside this module (the flow's synthesized-subject memo,
#: a serving engine's LRUs) compare it to detect that a name may now
#: mean something else and must be re-resolved.
_GENERATION = 0


def generation() -> int:
    """Monotonic counter of registry mutations (both kinds)."""
    return _GENERATION


def _bump_generation() -> None:
    global _GENERATION
    _GENERATION += 1
    # The flow memoizes synthesized subjects by circuit *name*; a
    # replaced registration must not serve a stale graph.  Only clear
    # when the module is already imported (no import cost here).
    import sys
    flow = sys.modules.get("repro.experiments.flow")
    # getattr-guarded: during the initial import chain the flow module
    # may itself be mid-initialization.
    memo = getattr(flow, "synthesized_benchmark", None)
    if memo is not None:
        memo.cache_clear()


class _Registry:
    """Key/alias bookkeeping shared by the library and circuit registries.

    ``kind`` only flavors error messages; the semantics — canonical
    keys in registration order, aliases resolving to keys, collisions
    rejected unless ``replace`` — are identical for both.
    """

    def __init__(self, kind: str):
        self.kind = kind
        #: Canonical key -> entry, in registration order.
        self.entries: Dict[str, Any] = {}
        #: Any accepted spelling (key or alias) -> canonical key.
        self.names: Dict[str, str] = {}

    def add(self, entry: Any, replace: bool) -> None:
        key = entry.key
        taken = {name: owner for name, owner in self.names.items()
                 if not (replace and owner == key)}
        for name in (key, *entry.aliases):
            if name in taken and taken[name] != key:
                raise ExperimentError(
                    f"{self.kind} name {name!r} is already registered "
                    f"(for {taken[name]!r})")
        if key in self.entries and not replace:
            raise ExperimentError(
                f"{self.kind} {key!r} is already registered; pass "
                f"replace=True to override")
        old = self.entries.get(key)
        if old is not None:
            for name in old.aliases:
                if self.names.get(name) == key:
                    del self.names[name]
        # Plain assignment so a replaced key keeps its registration slot.
        self.entries[key] = entry
        self.names[key] = key
        for alias in entry.aliases:
            self.names[alias] = key

    def remove(self, key: str, missing_ok: bool = False) -> Optional[Any]:
        entry = self.entries.pop(key, None)
        if entry is None:
            if missing_ok:
                return None
            raise ExperimentError(
                f"{self.kind} {key!r} is not registered")
        for name in (entry.key, *entry.aliases):
            if self.names.get(name) == key:
                del self.names[name]
        return entry

    def canonical(self, name: str) -> str:
        try:
            return self.names[name]
        except KeyError:
            raise ExperimentError(
                f"unknown {self.kind} {name!r}; choose from "
                f"{sorted(self.names)}") from None


# -- libraries -----------------------------------------------------------------


@dataclass(frozen=True)
class LibraryEntry:
    """One registered library: canonical key, factory and metadata."""

    key: str
    factory: LibraryFactory
    aliases: Tuple[str, ...] = ()
    description: str = ""
    #: Whether :func:`cached_library` may hydrate this library from a
    #: prebuilt foundry artifact before falling back to the factory.
    artifact: bool = True


_LIBRARIES = _Registry("library")
#: Per-process build cache, keyed by (canonical key, vdd).
_LIBRARY_CACHE: Dict[Tuple[str, Optional[float]], Library] = {}


def register_library(key: str, factory: LibraryFactory, *,
                     aliases: Tuple[str, ...] = (),
                     description: str = "",
                     artifact: bool = True,
                     replace: bool = False) -> LibraryEntry:
    """Register a library factory under ``key`` (plus optional aliases).

    Args:
        key: canonical library name; should equal the ``Library.name``
            the factory produces so results and listings agree.
        factory: ``factory(vdd) -> Library``; ``vdd=None`` means the
            technology's native supply.
        aliases: additional accepted spellings of the key.
        description: one line for CLI listings.
        artifact: allow hydration from prebuilt foundry artifacts;
            disable for factories whose output the foundry's structural
            content key cannot capture (e.g. stateful closures).
        replace: allow re-registering an existing key (its cached
            builds are dropped); without it a collision raises.

    Raises:
        ExperimentError: on key/alias collisions (unless ``replace``).
    """
    entry = LibraryEntry(key=key, factory=factory,
                         aliases=tuple(aliases), description=description,
                         artifact=artifact)
    _LIBRARIES.add(entry, replace=replace)
    for cache_key in [k for k in _LIBRARY_CACHE if k[0] == key]:
        del _LIBRARY_CACHE[cache_key]
    _bump_generation()
    return entry


def unregister_library(key: str, missing_ok: bool = False) -> None:
    """Remove a registered library, its aliases and its cached builds."""
    if _LIBRARIES.remove(key, missing_ok=missing_ok) is None:
        return
    for cache_key in [k for k in _LIBRARY_CACHE if k[0] == key]:
        del _LIBRARY_CACHE[cache_key]
    _bump_generation()


def available_libraries() -> List[str]:
    """Canonical keys of every registered library, registration order."""
    return list(_LIBRARIES.entries)


def library_aliases() -> Dict[str, str]:
    """Every accepted spelling (keys included) -> canonical key."""
    return dict(_LIBRARIES.names)


def library_entry(name: str) -> LibraryEntry:
    """The registration entry behind a key or alias."""
    return _LIBRARIES.entries[canonical_library(name)]


def canonical_library(name: str) -> str:
    """Resolve a library key or alias to its canonical key.

    Raises :class:`ExperimentError` naming the known spellings when the
    name is not registered.
    """
    return _LIBRARIES.canonical(name)


def build_library(name: str, vdd: Optional[float] = None) -> Library:
    """Build a fresh library by key or alias (no caching)."""
    return _LIBRARIES.entries[canonical_library(name)].factory(vdd)


def cached_library(name: str, vdd: Optional[float] = None) -> Library:
    """Build a library once per process per (key, vdd) and reuse it.

    The cache is what lets worker processes and repeated estimates
    share characterized libraries (and their warmed match tables);
    ``vdd=None`` and the technology's literal native supply are
    distinct cache slots but construct value-identical libraries.
    """
    key = canonical_library(name)
    cache_key = (key, vdd)
    library = _LIBRARY_CACHE.get(cache_key)
    if library is None:
        entry = _LIBRARIES.entries[key]
        if entry.artifact:
            # Prebuilt path: hydrate from a foundry artifact when one
            # exists (bit-identical, zero SPICE solves).  Lazy import —
            # the foundry imports this module at its top level.
            from repro import foundry
            library = foundry.load_library(key, vdd)
        if library is None:
            library = entry.factory(vdd)
        _LIBRARY_CACHE[cache_key] = library
    return library


def cached_library_vdds(name: str) -> List[Optional[float]]:
    """The vdd slots of ``name`` currently hot in this process."""
    key = canonical_library(name)
    return [vdd for cached_key, vdd in _LIBRARY_CACHE if cached_key == key]


def clear_library_cache(name: Optional[str] = None) -> None:
    """Drop cached library builds (all keys, or just ``name``)."""
    if name is None:
        _LIBRARY_CACHE.clear()
        return
    key = canonical_library(name)
    for cache_key in [k for k in _LIBRARY_CACHE if k[0] == key]:
        del _LIBRARY_CACHE[cache_key]


def paper_libraries(vdd: Optional[float] = None) -> Dict[str, Library]:
    """The three libraries of the paper's Table 1 comparison, by key.

    Cached per process per vdd (the replacement for the removed
    ``repro.experiments.flow.cached_libraries`` shim).
    """
    return {key: cached_library(key, vdd) for key in PAPER_LIBRARIES}


def tech_at(tech: TechnologyParams,
            vdd: Optional[float]) -> TechnologyParams:
    """``tech`` re-supplied at ``vdd`` (``None`` keeps the native supply).

    The standard helper for writing vdd-aware factories: cell timing
    and leakage are characterized at the requested operating point.
    """
    return tech if vdd is None else tech.with_vdd(vdd)


# -- circuits ------------------------------------------------------------------


@dataclass(frozen=True)
class CircuitEntry:
    """One registered circuit: canonical key, ``build()`` factory and
    metadata.

    ``paper`` holds the paper's Table 1 reference rows (a mapping of
    library key -> :class:`~repro.circuits.suite.PaperRow`) for the 12
    built-in benchmarks and is ``None`` for user registrations;
    ``function`` is the paper's "Function" column (free text for user
    circuits).
    """

    key: str
    build: CircuitFactory
    aliases: Tuple[str, ...] = ()
    description: str = ""
    function: str = ""
    paper: Optional[Mapping[str, Any]] = field(default=None, hash=False)
    #: Key of the circuit family this entry was instantiated from
    #: (``None`` for directly registered circuits).
    family: Optional[str] = None


_CIRCUITS = _Registry("circuit")
#: Per-process build cache, keyed by canonical key.
_CIRCUIT_CACHE: Dict[str, "Aig"] = {}


def register_circuit(key: str, build: CircuitFactory, *,
                     aliases: Tuple[str, ...] = (),
                     description: str = "",
                     function: str = "",
                     paper: Optional[Mapping[str, Any]] = None,
                     replace: bool = False) -> CircuitEntry:
    """Register a circuit factory under ``key`` (plus optional aliases).

    Args:
        key: canonical circuit name (what results and reports show).
        build: ``build() -> Aig``; must be deterministic — every call
            constructs the same graph, which is what lets worker
            processes and caches share one synthesis.
        aliases: additional accepted spellings of the key.
        description: one line for CLI listings.
        function: the functional class (the paper's "Function" column).
        paper: the paper's reference Table 1 rows for this circuit
            (built-in benchmarks only).
        replace: allow re-registering an existing key (its cached
            build is dropped); without it a collision raises.

    Raises:
        ExperimentError: on key/alias collisions (unless ``replace``).
    """
    entry = CircuitEntry(key=key, build=build, aliases=tuple(aliases),
                         description=description, function=function,
                         paper=paper)
    _CIRCUITS.add(entry, replace=replace)
    _CIRCUIT_CACHE.pop(key, None)
    # A non-BLIF registration taking over a BLIF key must not leave a
    # stale source for worker replay (register_blif_text re-records).
    _BLIF_SOURCES.pop(key, None)
    _bump_generation()
    return entry


def unregister_circuit(key: str, missing_ok: bool = False) -> None:
    """Remove a registered circuit, its aliases and its cached build."""
    if _CIRCUITS.remove(key, missing_ok=missing_ok) is None:
        return
    _CIRCUIT_CACHE.pop(key, None)
    _BLIF_SOURCES.pop(key, None)
    _bump_generation()


def available_circuits() -> List[str]:
    """Canonical keys of every registered circuit, registration order."""
    return list(_CIRCUITS.entries)


def circuit_aliases() -> Dict[str, str]:
    """Every accepted spelling (keys included) -> canonical key."""
    return dict(_CIRCUITS.names)


def circuit_entry(name: str) -> CircuitEntry:
    """The registration entry behind a key or alias."""
    return _CIRCUITS.entries[canonical_circuit(name)]


def canonical_circuit(name: str) -> str:
    """Resolve a circuit key, alias or family spec to its canonical key.

    A family spec — ``family(param=value,...)``, e.g.
    ``synth:rand(gates=50000,seed=7)`` — resolves through the circuit
    *family* registry: the spec is parsed, normalized (defaults merged,
    parameters in declaration order) and the normalized spelling is
    registered as an ordinary circuit on first use, so it then flows
    through Session / sweep / serve / CLI like any named benchmark.

    Raises :class:`ExperimentError` naming the known spellings when the
    name is not registered (and the known families for a spec naming an
    unknown family).
    """
    known = _CIRCUITS.names.get(name)
    if known is not None:
        return known
    if is_family_spec(name):
        return resolve_family_spec(name)
    return _CIRCUITS.canonical(name)  # raises with the known spellings


def build_circuit(name: str) -> "Aig":
    """Build a fresh AIG by key or alias (no caching)."""
    return _CIRCUITS.entries[canonical_circuit(name)].build()


def cached_circuit(name: str) -> "Aig":
    """Build a circuit once per process and reuse the AIG.

    The experiment flow never mutates a subject graph (synthesis
    derives new graphs, keyed by the source's mutation stamp), so
    sharing one build between callers is safe and skips re-running the
    generator.
    """
    key = canonical_circuit(name)
    aig = _CIRCUIT_CACHE.get(key)
    if aig is None:
        aig = _CIRCUITS.entries[key].build()
        _CIRCUIT_CACHE[key] = aig
    return aig


def paper_benchmarks() -> List[str]:
    """Keys of the registered circuits carrying paper Table 1 rows,
    registration order — the 12-benchmark suite of the paper."""
    return [key for key, entry in _CIRCUITS.entries.items()
            if entry.paper is not None]


# -- circuit families ----------------------------------------------------------
#
# A circuit *family* is a parametric generator: one registration, an
# unbounded set of circuits.  Any spelling of the form
# ``family(param=value,...)`` is accepted wherever a circuit name is;
# it normalizes to a canonical spec string (every parameter explicit,
# declaration order) which becomes the circuit's registry key — and,
# because task/query keys content-hash the circuit name, the full
# parameterization is hashed into every cached result automatically.
#
# Instance registration is content-addressed (the key *is* the
# parameters), so it deliberately does NOT bump the registry
# generation: resolving a new spec must not flush a serving engine's
# warm caches.  Re-registering or removing the family itself does bump,
# and purges every instance derived from it.

#: ``family(args)`` — family keys may contain ``:`` (``synth:rand``),
#: dots and dashes; the argument list never nests parentheses.
_FAMILY_SPEC_RE = re.compile(
    r"^(?P<family>[A-Za-z0-9_.:\-]+)\((?P<args>[^()]*)\)$")

#: Parameter values that are bare words must stay unambiguous inside
#: the spec grammar (no separators, no parens, no ``=``).
_FAMILY_VALUE_RE = re.compile(r"^[A-Za-z0-9_.+\-]+$")


@dataclass(frozen=True)
class CircuitFamilyEntry:
    """One registered circuit family: key, factory and its parameters.

    ``factory(**params) -> Aig`` must be deterministic in its
    parameters; ``defaults`` fixes both the accepted parameter names,
    their types (a spec value is coerced to the default's type) and the
    canonical parameter order of normalized spec strings.
    """

    key: str
    factory: Callable[..., "Aig"]
    defaults: Tuple[Tuple[str, Any], ...]
    aliases: Tuple[str, ...] = ()
    description: str = ""
    function: str = ""


_FAMILIES = _Registry("circuit family")


def register_circuit_family(key: str, factory: Callable[..., "Aig"], *,
                            defaults: Mapping[str, Any],
                            aliases: Tuple[str, ...] = (),
                            description: str = "",
                            function: str = "",
                            replace: bool = False) -> CircuitFamilyEntry:
    """Register a parametric circuit family under ``key``.

    Args:
        key: family name as written in specs (``synth:rand``).
        factory: ``factory(**params) -> Aig``; deterministic per
            parameter set.
        defaults: full parameter set with default values, in the order
            normalized specs spell them.  A spec may override any
            subset; unknown names are rejected and values are coerced
            to the default's type.
        aliases: additional accepted family spellings.
        description: one line for CLI listings.
        function: the "Function" column of instantiated circuits.
        replace: allow re-registering (every instance circuit derived
            from the old registration is purged).

    Raises:
        ExperimentError: on name collisions (unless ``replace``) or
            unusable defaults.
    """
    for name, value in dict(defaults).items():
        if _spec_value(value) is None:
            raise ExperimentError(
                f"circuit family {key!r}: default {name}={value!r} "
                f"cannot be spelled in a spec string (use int, float, "
                f"bool or a plain word)")
    entry = CircuitFamilyEntry(
        key=key, factory=factory, defaults=tuple(dict(defaults).items()),
        aliases=tuple(aliases), description=description, function=function)
    if replace and key in _FAMILIES.entries:
        _purge_family_instances(key)
    _FAMILIES.add(entry, replace=replace)
    _bump_generation()
    return entry


def unregister_circuit_family(key: str, missing_ok: bool = False) -> None:
    """Remove a family and every instance circuit derived from it."""
    if _FAMILIES.remove(key, missing_ok=missing_ok) is None:
        return
    _purge_family_instances(key)
    _bump_generation()


def _purge_family_instances(key: str) -> None:
    instances = [entry.key for entry in _CIRCUITS.entries.values()
                 if entry.family == key]
    for instance in instances:
        _CIRCUITS.remove(instance, missing_ok=True)
        _CIRCUIT_CACHE.pop(instance, None)


def available_circuit_families() -> List[str]:
    """Canonical keys of every registered family, registration order."""
    return list(_FAMILIES.entries)


def circuit_family_entry(name: str) -> CircuitFamilyEntry:
    """The registration entry behind a family key or alias."""
    return _FAMILIES.entries[_FAMILIES.canonical(name)]


def is_family_spec(name: str) -> bool:
    """True when ``name`` is spelled as a family spec (``f(...)``).

    Purely syntactic — the family may still be unknown or the
    parameters invalid; :func:`parse_family_spec` decides that.
    """
    return _FAMILY_SPEC_RE.match(name) is not None


def _spec_value(value: Any) -> Optional[str]:
    """The spec-string spelling of a parameter value (None: unspellable).

    ``repr`` for floats (round-trips doubles exactly, matching
    :mod:`repro.cache` hashing), ``true``/``false`` for bools, decimal
    for ints, the bare word for strings.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str) and _FAMILY_VALUE_RE.match(value):
        return value
    return None


def _parse_value(family: str, name: str, text: str, default: Any) -> Any:
    """Coerce one ``name=text`` spec argument to the default's type."""
    try:
        if isinstance(default, bool):
            lowered = text.lower()
            if lowered in ("true", "1"):
                return True
            if lowered in ("false", "0"):
                return False
            raise ValueError(text)
        if isinstance(default, int):
            return int(text, 10)
        if isinstance(default, float):
            return float(text)
    except ValueError:
        raise ExperimentError(
            f"circuit family spec {family!r}: parameter {name}={text!r} "
            f"is not a valid {type(default).__name__}") from None
    if not _FAMILY_VALUE_RE.match(text):
        raise ExperimentError(
            f"circuit family spec {family!r}: parameter {name}={text!r} "
            f"contains characters the spec grammar cannot round-trip")
    return text


def parse_family_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Parse ``family(k=v,...)`` into (canonical family key, parameters).

    The returned parameters are the *full* set: the family's defaults
    overlaid with the spec's explicit arguments, coerced to the
    defaults' types.  Unknown families, unknown or repeated parameter
    names and malformed values raise :class:`ExperimentError`.
    """
    match = _FAMILY_SPEC_RE.match(spec)
    if match is None:
        raise ExperimentError(
            f"malformed circuit family spec {spec!r}; expected "
            f"family(param=value,...)")
    family = _FAMILIES.canonical(match.group("family"))
    defaults = dict(_FAMILIES.entries[family].defaults)
    params = dict(defaults)
    seen = set()
    args = match.group("args").strip()
    for item in args.split(",") if args else ():
        name, sep, text = item.partition("=")
        name = name.strip()
        text = text.strip()
        if not sep or not name or not text:
            raise ExperimentError(
                f"circuit family spec {spec!r}: malformed argument "
                f"{item.strip()!r}; expected param=value")
        if name not in defaults:
            raise ExperimentError(
                f"circuit family {family!r} has no parameter {name!r}; "
                f"choose from {', '.join(defaults)}")
        if name in seen:
            raise ExperimentError(
                f"circuit family spec {spec!r}: parameter {name!r} "
                f"given twice")
        seen.add(name)
        params[name] = _parse_value(family, name, text, defaults[name])
    return family, params


def normalize_family_spec(spec: str) -> str:
    """The canonical spelling of a family spec.

    Every parameter explicit, declaration order, canonical family key —
    so any two spellings of the same circuit normalize (and hash)
    identically, and a later change of a family *default* cannot
    silently change what a stored result's key meant.
    """
    family, params = parse_family_spec(spec)
    entry = _FAMILIES.entries[family]
    args = ",".join(f"{name}={_spec_value(params[name])}"
                    for name, _ in entry.defaults)
    return f"{family}({args})"


def resolve_family_spec(spec: str) -> str:
    """Resolve a spec to its canonical circuit key, registering the
    instance circuit on first use.

    The instance registration is content-addressed (the normalized
    spec *is* the parameters), so it does not bump the registry
    generation — warm caches keyed by other names stay valid.
    """
    family, params = parse_family_spec(spec)
    entry = _FAMILIES.entries[family]
    canonical = normalize_family_spec(spec)
    if canonical not in _CIRCUITS.names:
        def build(entry=entry, params=params):
            return entry.factory(**params)

        instance = CircuitEntry(
            key=canonical, build=build,
            description=(entry.description or f"{family} family")
            + " instance",
            function=entry.function, family=family)
        _CIRCUITS.add(instance, replace=True)
        _CIRCUIT_CACHE.pop(canonical, None)
        # Deliberately no _bump_generation() here (see docstring).
    return canonical


#: BLIF registrations made in this process: canonical key -> the
#: captured source text + metadata.  This is the picklable record
#: worker processes replay (:func:`blif_registrations` /
#: :func:`restore_blif_registrations`), so ``--blif`` netlists survive
#: the ``spawn`` multiprocessing start method, where workers re-import
#: the registry and would otherwise only know the built-in circuits.
_BLIF_SOURCES: Dict[str, Dict[str, Any]] = {}


def register_blif_text(text: str, key: Optional[str] = None, *,
                       aliases: Tuple[str, ...] = (),
                       description: str = "",
                       replace: bool = False) -> CircuitEntry:
    """Register a combinational BLIF netlist from its source text.

    The text is parsed once, up front (so registration fails loudly on
    a malformed netlist); the factory then rebuilds the AIG from the
    captured text, which keeps ``build()`` deterministic like every
    other registration.

    Args:
        text: ``.names``-based combinational BLIF source (parsed by
            :func:`repro.circuits.blif.read_blif`).
        key: canonical circuit name; defaults to the ``.model`` name.
        aliases: additional accepted spellings.
        description: one line for CLI listings.
        replace: allow re-registering an existing key.

    Raises:
        ExperimentError: on a name collision.
        SynthesisError: on malformed BLIF.
    """
    from repro.circuits.blif import read_blif

    parsed = read_blif(text)  # validate before registering
    name = key or parsed.name

    def build(text=text):
        return read_blif(text)

    entry = register_circuit(
        name, build, aliases=aliases,
        description=description or "user BLIF netlist",
        function="User netlist (BLIF)", replace=replace)
    _BLIF_SOURCES[name] = {"text": text, "key": name,
                           "aliases": tuple(aliases),
                           "description": entry.description}
    return entry


def register_blif_circuit(path: str, key: Optional[str] = None, *,
                          aliases: Tuple[str, ...] = (),
                          description: str = "",
                          replace: bool = False) -> CircuitEntry:
    """Register a combinational BLIF netlist file as a named circuit.

    The file is read once at registration (later builds are hermetic
    against file edits); everything else is
    :func:`register_blif_text`.

    Raises:
        ExperimentError: on an unreadable file or name collision.
        SynthesisError: on malformed BLIF.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ExperimentError(f"cannot read BLIF file {path}: {exc}")
    return register_blif_text(
        text, key, aliases=aliases,
        description=description or f"BLIF netlist from {path}",
        replace=replace)


def blif_registrations() -> List[Dict[str, Any]]:
    """Picklable snapshot of every live BLIF registration.

    The parallel runner ships this to worker processes so a netlist
    registered at runtime is buildable there under any multiprocessing
    start method (under ``fork`` the workers inherit the registry
    anyway; under ``spawn`` this replay is what makes ``--blif`` +
    ``--jobs`` work).
    """
    return [dict(entry) for entry in _BLIF_SOURCES.values()]


def restore_blif_registrations(snapshot: List[Dict[str, Any]]) -> None:
    """Re-apply a :func:`blif_registrations` snapshot (worker side)."""
    for entry in snapshot:
        register_blif_text(entry["text"], entry["key"],
                           aliases=tuple(entry["aliases"]),
                           description=entry["description"],
                           replace=True)


# -- built-in registrations ---------------------------------------------------

#: The paper's Table 1 columns, in column-block order.
PAPER_LIBRARIES = (GENERALIZED, CONVENTIONAL, CMOS)

register_library(
    GENERALIZED,
    lambda vdd=None: generalized_cntfet_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("generalized",),
    description="46-cell generalized ambipolar CNTFET library "
                "(transmission-gate XOR cells, Ben Jamaa et al. [3])")

register_library(
    CONVENTIONAL,
    lambda vdd=None: conventional_cntfet_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("conventional",),
    description="20 conventional-function cells in the CNTFET technology")

register_library(
    CMOS,
    lambda vdd=None: cmos_library(tech_at(CMOS_32NM, vdd)),
    aliases=("cmos32",),
    description="32 nm bulk CMOS reference library")

register_library(
    HYBRID_PASS,
    lambda vdd=None: hybrid_pass_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("hybrid", "hybrid-pass"),
    description="hybrid pass-transistor ambipolar demo library "
                "(after Hu et al., arXiv:2002.01932)")

register_library(
    NP_DYNAMIC,
    lambda vdd=None: np_dynamic_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("np-dynamic", "np-domino"),
    description="NP-domino ambipolar demo library "
                "(after hybrid CMOS-CNFET logic, arXiv:1805.04074)")

# The 12 paper benchmarks and the built-in circuit families register
# themselves on import; importing them here makes `import
# repro.registry` alone see them.  These imports must stay last: both
# modules import the registration functions above from this (then
# partially-initialized) module.
from repro.circuits import families as _families  # noqa: E402,F401
from repro.circuits import suite as _suite  # noqa: E402,F401
