"""Registry of named, discoverable library factories.

Every place the reproduction needs a cell library by name — the Table 1
columns, the sweep ``library`` axis, the CLI ``--library`` flags, the
:class:`repro.api.Session` front door — resolves it here.  A library is
*registered*, not hardwired: adding a fourth technology to the
comparison is one :func:`register_library` call, with no edits to
``experiments/`` or ``sweep/``.

A factory is a callable ``factory(vdd) -> Library``: ``vdd=None`` builds
the library at its technology's native supply, any other value
re-characterizes it at that operating point (the supply-sweep path,
conventionally via :meth:`TechnologyParams.with_vdd`).  Keys are the
canonical library names (also the ``Library.name`` of what the factory
builds); aliases are short spellings accepted anywhere a key is
(``"generalized"`` for ``"cntfet-generalized"``, ...).

The three paper libraries plus the hybrid pass-transistor demo library
(after Hu et al., arXiv:2002.01932) are registered at import time;
:func:`available_libraries` lists whatever is registered right now.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.suite import CMOS, CONVENTIONAL, GENERALIZED
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM, TechnologyParams
from repro.errors import ExperimentError
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library, conventional_cntfet_library
from repro.gates.hybrid_pass import HYBRID_PASS, hybrid_pass_library
from repro.gates.library import Library

#: Factory signature: build the library, optionally at a non-native vdd.
LibraryFactory = Callable[[Optional[float]], Library]


@dataclass(frozen=True)
class LibraryEntry:
    """One registered library: canonical key, factory and metadata."""

    key: str
    factory: LibraryFactory
    aliases: Tuple[str, ...] = ()
    description: str = ""


#: Canonical key -> entry, in registration order.
_ENTRIES: Dict[str, LibraryEntry] = {}
#: Any accepted spelling (key or alias) -> canonical key.
_NAMES: Dict[str, str] = {}
#: Per-process build cache, keyed by (canonical key, vdd).
_CACHE: Dict[Tuple[str, Optional[float]], Library] = {}


def register_library(key: str, factory: LibraryFactory, *,
                     aliases: Tuple[str, ...] = (),
                     description: str = "",
                     replace: bool = False) -> LibraryEntry:
    """Register a library factory under ``key`` (plus optional aliases).

    Args:
        key: canonical library name; should equal the ``Library.name``
            the factory produces so results and listings agree.
        factory: ``factory(vdd) -> Library``; ``vdd=None`` means the
            technology's native supply.
        aliases: additional accepted spellings of the key.
        description: one line for CLI listings.
        replace: allow re-registering an existing key (its cached
            builds are dropped); without it a collision raises.

    Raises:
        ExperimentError: on key/alias collisions (unless ``replace``).
    """
    entry = LibraryEntry(key=key, factory=factory,
                         aliases=tuple(aliases), description=description)
    taken = {name: owner for name, owner in _NAMES.items()
             if not (replace and owner == key)}
    for name in (key, *entry.aliases):
        if name in taken and taken[name] != key:
            raise ExperimentError(
                f"library name {name!r} is already registered "
                f"(for {taken[name]!r})")
    if key in _ENTRIES and not replace:
        raise ExperimentError(
            f"library {key!r} is already registered; pass replace=True "
            f"to override")
    unregister_library(key, missing_ok=True)
    _ENTRIES[key] = entry
    _NAMES[key] = key
    for alias in entry.aliases:
        _NAMES[alias] = key
    return entry


def unregister_library(key: str, missing_ok: bool = False) -> None:
    """Remove a registered library, its aliases and its cached builds."""
    entry = _ENTRIES.pop(key, None)
    if entry is None:
        if missing_ok:
            return
        raise ExperimentError(f"library {key!r} is not registered")
    for name in (entry.key, *entry.aliases):
        if _NAMES.get(name) == key:
            del _NAMES[name]
    for cache_key in [k for k in _CACHE if k[0] == key]:
        del _CACHE[cache_key]


def available_libraries() -> List[str]:
    """Canonical keys of every registered library, registration order."""
    return list(_ENTRIES)


def library_aliases() -> Dict[str, str]:
    """Every accepted spelling (keys included) -> canonical key."""
    return dict(_NAMES)


def library_entry(name: str) -> LibraryEntry:
    """The registration entry behind a key or alias."""
    return _ENTRIES[canonical_library(name)]


def canonical_library(name: str) -> str:
    """Resolve a library key or alias to its canonical key.

    Raises :class:`ExperimentError` naming the known spellings when the
    name is not registered.
    """
    try:
        return _NAMES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown library {name!r}; choose from "
            f"{sorted(_NAMES)}") from None


def build_library(name: str, vdd: Optional[float] = None) -> Library:
    """Build a fresh library by key or alias (no caching)."""
    return _ENTRIES[canonical_library(name)].factory(vdd)


def cached_library(name: str, vdd: Optional[float] = None) -> Library:
    """Build a library once per process per (key, vdd) and reuse it.

    The cache is what lets worker processes and repeated estimates
    share characterized libraries (and their warmed match tables);
    ``vdd=None`` and the technology's literal native supply are
    distinct cache slots but construct value-identical libraries.
    """
    key = canonical_library(name)
    cache_key = (key, vdd)
    library = _CACHE.get(cache_key)
    if library is None:
        library = _ENTRIES[key].factory(vdd)
        _CACHE[cache_key] = library
    return library


def paper_libraries(vdd: Optional[float] = None) -> Dict[str, Library]:
    """The three libraries of the paper's Table 1 comparison, by key.

    Cached per process per vdd — the modern spelling of the deprecated
    ``repro.experiments.flow.cached_libraries``.
    """
    return {key: cached_library(key, vdd) for key in PAPER_LIBRARIES}


def tech_at(tech: TechnologyParams,
            vdd: Optional[float]) -> TechnologyParams:
    """``tech`` re-supplied at ``vdd`` (``None`` keeps the native supply).

    The standard helper for writing vdd-aware factories: cell timing
    and leakage are characterized at the requested operating point.
    """
    return tech if vdd is None else tech.with_vdd(vdd)


# -- built-in registrations ---------------------------------------------------

#: The paper's Table 1 columns, in column-block order.
PAPER_LIBRARIES = (GENERALIZED, CONVENTIONAL, CMOS)

register_library(
    GENERALIZED,
    lambda vdd=None: generalized_cntfet_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("generalized",),
    description="46-cell generalized ambipolar CNTFET library "
                "(transmission-gate XOR cells, Ben Jamaa et al. [3])")

register_library(
    CONVENTIONAL,
    lambda vdd=None: conventional_cntfet_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("conventional",),
    description="20 conventional-function cells in the CNTFET technology")

register_library(
    CMOS,
    lambda vdd=None: cmos_library(tech_at(CMOS_32NM, vdd)),
    aliases=("cmos32",),
    description="32 nm bulk CMOS reference library")

register_library(
    HYBRID_PASS,
    lambda vdd=None: hybrid_pass_library(tech_at(CNTFET_32NM, vdd)),
    aliases=("hybrid", "hybrid-pass"),
    description="hybrid pass-transistor ambipolar demo library "
                "(after Hu et al., arXiv:2002.01932)")
