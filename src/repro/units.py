"""Physical constants and unit helpers.

Everything inside :mod:`repro` uses plain SI units (volts, amperes,
farads, seconds, watts).  The helpers here exist so that code and tests
can speak the paper's units (aF, ps, uW, GHz) without sprinkling
magic powers of ten around.
"""

from __future__ import annotations

# Fundamental constants ----------------------------------------------------

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default junction temperature used throughout the paper's flow (K).
ROOM_TEMPERATURE = 300.0


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q in volts (about 25.85 mV at 300 K)."""
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


# Multipliers (value * unit -> SI) ------------------------------------------

GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

#: One attofarad in farads.
AF = ATTO
#: One femtofarad in farads.
FF = FEMTO
#: One picosecond in seconds.
PS = PICO
#: One nanosecond in seconds.
NS = NANO
#: One nanometre in metres.
NM = NANO
#: One microwatt in watts.
UW = MICRO
#: One nanoampere in amperes.
NA = NANO
#: One microampere in amperes.
UA = MICRO
#: One gigahertz in hertz.
GHZ = GIGA


# Formatting helpers (SI -> human readable) ----------------------------------

def to_attofarads(capacitance: float) -> float:
    """Convert farads to attofarads."""
    return capacitance / AF


def to_picoseconds(duration: float) -> float:
    """Convert seconds to picoseconds."""
    return duration / PS


def to_microwatts(power: float) -> float:
    """Convert watts to microwatts."""
    return power / UW


def to_nanoamperes(current: float) -> float:
    """Convert amperes to nanoamperes."""
    return current / NA


def to_edp_units(edp: float) -> float:
    """Convert an energy-delay product in J*s to the paper's 1e-24 J*s unit."""
    return edp / 1e-24


def engineering(value: float, unit: str = "") -> str:
    """Format ``value`` with an engineering (power-of-1000) SI prefix.

    >>> engineering(3.2e-9, 'A')
    '3.200 nA'
    """
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
        (1e-15, "f"), (1e-18, "a"), (1e-21, "z"),
    ]
    if value == 0.0:
        return f"0.000 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.3f} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.3f} {prefix}{unit}".rstrip()
