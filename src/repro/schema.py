"""The versioned power-query wire schema.

One request/response pair covers every way a power number leaves this
package: :class:`PowerQuery` is the typed form of "estimate *this
circuit* on *this library* at *this operating point*", and
:class:`PowerQuoteReport` is the answer — the
:class:`~repro.experiments.flow.CircuitFlowResult` payload plus the
provenance a caller needs to trust it (schema version, server version,
backend, canonical keys, config hash, cache status).

Three consumers share it, on purpose:

* the **sweep store** — a :class:`~repro.sweep.spec.SweepTask` *is* a
  ``PowerQuery`` (same fields, same content hash), so stored sweep
  records and service responses are keyed identically and a sweep
  store can warm-start an estimation server;
* **reports** — :func:`store_record` / :func:`flow_from_record` are
  the single (de)serialization of a completed point, used by the store
  backends and the report pivots;
* the **service** (:mod:`repro.serve`) — ``POST /v1/estimate`` bodies
  parse with :meth:`PowerQuery.from_dict` and responses render with
  :meth:`PowerQuoteReport.to_dict`.

Serialization is strict both ways: unknown fields are rejected (a typo
never silently becomes a default), floats ride through JSON by value
(Python's ``json`` round-trips doubles exactly), and every payload
carries ``schema_version`` so a future layout change is detectable
rather than misparsed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Optional

from repro.cache import stable_hash
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import CircuitFlowResult

#: Version of the query/response wire layout.  Bump when a field is
#: added/renamed/retyped; peers reject payloads from a newer schema.
SCHEMA_VERSION = 1

#: Version of the *content-hash* payload behind ``query_key`` /
#: ``task_key`` (historically defined in :mod:`repro.sweep.spec`,
#: which re-exports it).  Bump when the meaning of a key changes
#: (fields added to the hashed payload, estimation semantics, ...):
#: old store entries are then simply never matched again.
#:
#: v2: ``ExperimentConfig`` gained the ``backend`` field (estimator
#: backend selection), which is part of the hashed config payload.
#: (``sim_kernel`` deliberately did *not* bump this: it is excluded
#: from the hashed payload — see :meth:`ExperimentConfig.key_dict`.)
TASK_SCHEMA_VERSION = 2

#: ``cache_status`` values a service response may carry.
CACHE_STATUSES = ("cold", "hot", "coalesced")

#: Upper bound on queries in one ``/v1/estimate_batch`` request.  A
#: batch is a convenience envelope, not a bulk-import channel; larger
#: grids belong in a sweep store.
MAX_BATCH_QUERIES = 1024


def _reject_unknown(data: Dict[str, Any], known: set, what: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExperimentError(
            f"unknown {what} fields: {', '.join(unknown)}")


def _flow_from_payload(data: Any, what: str) -> CircuitFlowResult:
    """A :class:`CircuitFlowResult` from an untrusted ``result`` object.

    Strict like the rest of the module: unknown and missing fields are
    :class:`ExperimentError`s, never ``TypeError``s out of the
    dataclass constructor.
    """
    if not isinstance(data, dict):
        raise ExperimentError(f"{what} 'result' must be a JSON object")
    known = {field.name for field in fields(CircuitFlowResult)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExperimentError(
            f"unknown {what} result fields: {', '.join(unknown)}")
    missing = sorted(known - set(data))
    if missing:
        raise ExperimentError(
            f"{what} result is missing fields: {', '.join(missing)}")
    return CircuitFlowResult(**data)


def _check_schema_version(data: Dict[str, Any], what: str) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise ExperimentError(
            f"bad {what} schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ExperimentError(
            f"{what} uses schema version {version}, but this build "
            f"only speaks <= {SCHEMA_VERSION}; upgrade the client or "
            f"the server")


@dataclass(frozen=True)
class PowerQuery:
    """One power question: a (circuit, library, config) triple.

    ``circuit`` and ``library`` are registry keys or aliases (the
    service canonicalizes them before hashing, so an alias and its key
    are the same query).  ``query_key`` is a deterministic content
    hash over everything that determines the answer — the same payload
    a :class:`~repro.sweep.spec.SweepTask` hashes, so service caches
    and sweep stores share keys.
    """

    circuit: str
    library: str
    config: ExperimentConfig = PAPER_CONFIG
    #: Optional per-request time budget, milliseconds.  Enforced by the
    #: serving engine *between* pipeline stages; deliberately excluded
    #: from ``query_key`` — it bounds the serving of the answer, it
    #: does not change the answer.
    deadline_ms: Optional[float] = None

    @property
    def query_key(self) -> str:
        # config.key_dict() rather than the dataclass: ``sim_kernel``
        # is a pure performance knob (kernels are bit-identical) and
        # must not fork keys.  The remaining fields normalize exactly
        # as the dataclass did before the field existed, so stored
        # task keys keep matching without a schema bump.
        return stable_hash({
            "schema": TASK_SCHEMA_VERSION,
            "circuit": self.circuit,
            "library": self.library,
            "config": self.config.key_dict(),
        })

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/estimate`` body)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "circuit": self.circuit,
            "library": self.library,
            "config": self.config.to_dict(),
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  default_config: Optional[ExperimentConfig] = None
                  ) -> "PowerQuery":
        """Inverse of :meth:`to_dict`.

        Rejects unknown fields and newer schema versions.  ``config``
        may be omitted (or ``None``): the query then runs at
        ``default_config`` — the serving session's configuration —
        which is what lets a bare ``{"circuit": ..., "library": ...}``
        body do the right thing against a ``repro serve --fast`` server.
        """
        if not isinstance(data, dict):
            raise ExperimentError(
                f"a power query must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(data, {"schema_version", "circuit", "library",
                               "config", "deadline_ms"}, "PowerQuery")
        _check_schema_version(data, "PowerQuery")
        for name in ("circuit", "library"):
            if not isinstance(data.get(name), str) or not data[name]:
                raise ExperimentError(
                    f"power query field {name!r} must be a non-empty "
                    f"string")
        deadline_ms = data.get("deadline_ms")
        if deadline_ms is not None:
            if (isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, (int, float))
                    or deadline_ms <= 0):
                raise ExperimentError(
                    f"power query field 'deadline_ms' must be a positive "
                    f"number, got {deadline_ms!r}")
        config_data = data.get("config")
        if config_data is None:
            config = default_config if default_config is not None \
                else PAPER_CONFIG
        else:
            config = ExperimentConfig.from_dict(config_data)
        return cls(circuit=data["circuit"], library=data["library"],
                   config=config, deadline_ms=deadline_ms)


@dataclass(frozen=True)
class PowerQuoteReport:
    """One power answer: the flow result plus its provenance.

    ``result`` carries the raw :class:`CircuitFlowResult` floats —
    bit-identical to what :meth:`repro.api.Session.run` returns for
    the same query (locked by goldens in the serve tests).  The rest
    is provenance: which build answered (``server_version``), with
    which estimator (``backend``), for which canonicalized subject
    (``circuit`` / ``library``), under exactly which configuration
    (``config_hash``, and ``query_key`` for the full identity), and
    whether the answer was computed or served warm (``cache_status``:
    ``cold`` = computed now, ``hot`` = from the result cache,
    ``coalesced`` = attached to an identical in-flight computation).
    """

    circuit: str
    library: str
    backend: str
    result: CircuitFlowResult
    config: ExperimentConfig = PAPER_CONFIG
    schema_version: int = SCHEMA_VERSION
    server_version: str = ""
    config_hash: str = ""
    query_key: str = ""
    cache_status: str = "cold"
    elapsed_s: float = 0.0

    def with_status(self, cache_status: str,
                    elapsed_s: float) -> "PowerQuoteReport":
        """A copy re-stamped for one particular serving of the answer."""
        if cache_status not in CACHE_STATUSES:
            raise ExperimentError(
                f"bad cache_status {cache_status!r}; expected one of "
                f"{', '.join(CACHE_STATUSES)}")
        return replace(self, cache_status=cache_status,
                       elapsed_s=elapsed_s)

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/estimate`` response)."""
        return {
            "schema_version": self.schema_version,
            "server_version": self.server_version,
            "circuit": self.circuit,
            "library": self.library,
            "backend": self.backend,
            "config": self.config.to_dict(),
            "config_hash": self.config_hash,
            "query_key": self.query_key,
            "cache_status": self.cache_status,
            "elapsed_s": self.elapsed_s,
            "result": asdict(self.result),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PowerQuoteReport":
        """Inverse of :meth:`to_dict`; floats round-trip exactly."""
        if not isinstance(data, dict):
            raise ExperimentError(
                f"a power quote must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(
            data,
            {"schema_version", "server_version", "circuit", "library",
             "backend", "config", "config_hash", "query_key",
             "cache_status", "elapsed_s", "result"},
            "PowerQuoteReport")
        _check_schema_version(data, "PowerQuoteReport")
        for name in ("circuit", "library", "backend", "result"):
            if name not in data:
                raise ExperimentError(
                    f"power quote is missing the {name!r} field")
        return cls(
            circuit=data["circuit"],
            library=data["library"],
            backend=data["backend"],
            result=_flow_from_payload(data["result"], "PowerQuoteReport"),
            config=ExperimentConfig.from_dict(data["config"])
            if data.get("config") is not None else PAPER_CONFIG,
            schema_version=data.get("schema_version", SCHEMA_VERSION),
            server_version=data.get("server_version", ""),
            config_hash=data.get("config_hash", ""),
            query_key=data.get("query_key", ""),
            cache_status=data.get("cache_status", "cold"),
            elapsed_s=data.get("elapsed_s", 0.0),
        )

    @classmethod
    def from_flow(cls, query: PowerQuery, flow: CircuitFlowResult, *,
                  server_version: str = "", cache_status: str = "cold",
                  elapsed_s: float = 0.0) -> "PowerQuoteReport":
        """Wrap a computed flow result for a (canonicalized) query."""
        return cls(
            circuit=query.circuit,
            library=query.library,
            backend=query.config.backend,
            result=flow,
            config=query.config,
            server_version=server_version,
            config_hash=stable_hash(query.config),
            query_key=query.query_key,
            cache_status=cache_status,
            elapsed_s=elapsed_s,
        )


# -- batch envelopes -----------------------------------------------------------
#
# ``POST /v1/estimate_batch`` carries many queries in one versioned
# envelope; the response mirrors it with one report per query, input
# order.  The envelope is strict like the single-query forms: unknown
# fields, newer schema versions, empty and oversized batches are all
# rejected up front.


def batch_request_payload(queries: List[PowerQuery]) -> Dict[str, Any]:
    """The ``POST /v1/estimate_batch`` body for a list of queries."""
    return {"schema_version": SCHEMA_VERSION,
            "queries": [query.to_dict() for query in queries]}


def queries_from_batch(data: Dict[str, Any],
                       default_config: Optional[ExperimentConfig] = None
                       ) -> List[PowerQuery]:
    """Parse a batch request envelope into its queries (strict)."""
    if not isinstance(data, dict):
        raise ExperimentError(
            f"a batch query must be a JSON object, got "
            f"{type(data).__name__}")
    _reject_unknown(data, {"schema_version", "queries"}, "batch query")
    _check_schema_version(data, "batch query")
    queries = data.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ExperimentError(
            "batch query field 'queries' must be a non-empty list")
    if len(queries) > MAX_BATCH_QUERIES:
        raise ExperimentError(
            f"batch query carries {len(queries)} queries; the limit is "
            f"{MAX_BATCH_QUERIES} — split the batch or run a sweep")
    return [PowerQuery.from_dict(entry, default_config=default_config)
            for entry in queries]


def batch_response_payload(reports: List[PowerQuoteReport]
                           ) -> Dict[str, Any]:
    """The ``/v1/estimate_batch`` response body (one report per query)."""
    return {"schema_version": SCHEMA_VERSION,
            "reports": [report.to_dict() for report in reports]}


def reports_from_batch(data: Dict[str, Any]) -> List[PowerQuoteReport]:
    """Inverse of :func:`batch_response_payload` (strict)."""
    if not isinstance(data, dict):
        raise ExperimentError(
            f"a batch response must be a JSON object, got "
            f"{type(data).__name__}")
    _reject_unknown(data, {"schema_version", "reports"}, "batch response")
    _check_schema_version(data, "batch response")
    reports = data.get("reports")
    if not isinstance(reports, list):
        raise ExperimentError(
            "batch response field 'reports' must be a list")
    return [PowerQuoteReport.from_dict(entry) for entry in reports]


# -- the store record shape ----------------------------------------------------
#
# One completed point, as persisted by the sweep result stores and as
# appended by the serving engine.  The shape predates this module (it
# is what every existing sweep store on disk holds), so the helpers
# here are the compatibility contract: ``store_record`` writes exactly
# the historical layout and ``flow_from_record`` reads it back.


def store_record(query: PowerQuery, flow: CircuitFlowResult,
                 elapsed_s: float) -> Dict[str, Any]:
    """The stored form of one completed point.

    ``result`` holds the raw :class:`CircuitFlowResult` floats; JSON
    round-trips doubles exactly, so a record read back compares
    bit-identically to the in-memory computation.
    """
    return {
        "task_key": query.query_key,
        "circuit": query.circuit,
        "library": query.library,
        "config": query.config.to_dict(),
        "result": asdict(flow),
        "elapsed_s": elapsed_s,
    }


def flow_from_record(record: Dict[str, Any]) -> CircuitFlowResult:
    """Rehydrate the :class:`CircuitFlowResult` of a stored record."""
    return _flow_from_payload(record.get("result"), "store record")


def quote_from_record(record: Dict[str, Any], *,
                      server_version: str = "",
                      cache_status: str = "hot") -> PowerQuoteReport:
    """Lift a stored sweep record into a service response.

    This is what lets an :class:`~repro.serve.Engine` warm-start from
    a sweep store: the record's task key *is* the query key.
    """
    config = ExperimentConfig.from_dict(record.get("config", {}))
    query = PowerQuery(circuit=record["circuit"],
                       library=record["library"], config=config)
    return PowerQuoteReport.from_flow(
        query, flow_from_record(record), server_version=server_version,
        cache_status=cache_status, elapsed_s=0.0)
