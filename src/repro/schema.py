"""The versioned power-query wire schema.

One request/response pair covers every way a power number leaves this
package: :class:`PowerQuery` is the typed form of "estimate *this
circuit* on *this library* at *this operating point*", and
:class:`PowerQuoteReport` is the answer — the
:class:`~repro.experiments.flow.CircuitFlowResult` payload plus the
provenance a caller needs to trust it (schema version, server version,
backend, canonical keys, config hash, cache status).

Three consumers share it, on purpose:

* the **sweep store** — a :class:`~repro.sweep.spec.SweepTask` *is* a
  ``PowerQuery`` (same fields, same content hash), so stored sweep
  records and service responses are keyed identically and a sweep
  store can warm-start an estimation server;
* **reports** — :func:`store_record` / :func:`flow_from_record` are
  the single (de)serialization of a completed point, used by the store
  backends and the report pivots;
* the **service** (:mod:`repro.serve`) — ``POST /v1/estimate`` bodies
  parse with :meth:`PowerQuery.from_dict` and responses render with
  :meth:`PowerQuoteReport.to_dict`.

Serialization is strict both ways: unknown fields are rejected (a typo
never silently becomes a default), floats ride through JSON by value
(Python's ``json`` round-trips doubles exactly), and every payload
carries ``schema_version`` so a future layout change is detectable
rather than misparsed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.cache import stable_hash
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import CircuitFlowResult

#: Version of the query/response wire layout.  Bump when a field is
#: added/renamed/retyped; peers reject payloads from a newer schema.
#:
#: v2: ``PowerQuoteReport`` gained the optional timing fields
#: ``delay_ns`` / ``fmax_hz`` / ``energy_per_cycle`` / ``pdp``, and the
#: ``/v1/optimize`` envelope (``OptimizeQuery`` / ``OptimizeReport``)
#: joined the schema.  v1 payloads parse unchanged (the new fields are
#: optional).
SCHEMA_VERSION = 2

#: Version of the *content-hash* payload behind ``query_key`` /
#: ``task_key`` (historically defined in :mod:`repro.sweep.spec`,
#: which re-exports it).  Bump when the meaning of a key changes
#: (fields added to the hashed payload, estimation semantics, ...):
#: old store entries are then simply never matched again.
#:
#: v2: ``ExperimentConfig`` gained the ``backend`` field (estimator
#: backend selection), which is part of the hashed config payload.
#: (``sim_kernel`` deliberately did *not* bump this: it is excluded
#: from the hashed payload — see :meth:`ExperimentConfig.key_dict`.)
TASK_SCHEMA_VERSION = 2

#: ``cache_status`` values a service response may carry.
CACHE_STATUSES = ("cold", "hot", "coalesced")

#: Upper bound on queries in one ``/v1/estimate_batch`` request.  A
#: batch is a convenience envelope, not a bulk-import channel; larger
#: grids belong in a sweep store.
MAX_BATCH_QUERIES = 1024


def _reject_unknown(data: Dict[str, Any], known: set, what: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExperimentError(
            f"unknown {what} fields: {', '.join(unknown)}")


def _flow_from_payload(data: Any, what: str) -> CircuitFlowResult:
    """A :class:`CircuitFlowResult` from an untrusted ``result`` object.

    Strict like the rest of the module: unknown and missing fields are
    :class:`ExperimentError`s, never ``TypeError``s out of the
    dataclass constructor.
    """
    if not isinstance(data, dict):
        raise ExperimentError(f"{what} 'result' must be a JSON object")
    known = {field.name for field in fields(CircuitFlowResult)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExperimentError(
            f"unknown {what} result fields: {', '.join(unknown)}")
    missing = sorted(known - set(data))
    if missing:
        raise ExperimentError(
            f"{what} result is missing fields: {', '.join(missing)}")
    return CircuitFlowResult(**data)


def _check_schema_version(data: Dict[str, Any], what: str) -> None:
    version = data.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise ExperimentError(
            f"bad {what} schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ExperimentError(
            f"{what} uses schema version {version}, but this build "
            f"only speaks <= {SCHEMA_VERSION}; upgrade the client or "
            f"the server")


@dataclass(frozen=True)
class PowerQuery:
    """One power question: a (circuit, library, config) triple.

    ``circuit`` and ``library`` are registry keys or aliases (the
    service canonicalizes them before hashing, so an alias and its key
    are the same query).  ``query_key`` is a deterministic content
    hash over everything that determines the answer — the same payload
    a :class:`~repro.sweep.spec.SweepTask` hashes, so service caches
    and sweep stores share keys.
    """

    circuit: str
    library: str
    config: ExperimentConfig = PAPER_CONFIG
    #: Optional per-request time budget, milliseconds.  Enforced by the
    #: serving engine *between* pipeline stages; deliberately excluded
    #: from ``query_key`` — it bounds the serving of the answer, it
    #: does not change the answer.
    deadline_ms: Optional[float] = None

    @property
    def query_key(self) -> str:
        # config.key_dict() rather than the dataclass: ``sim_kernel``
        # is a pure performance knob (kernels are bit-identical) and
        # must not fork keys.  The remaining fields normalize exactly
        # as the dataclass did before the field existed, so stored
        # task keys keep matching without a schema bump.
        return stable_hash({
            "schema": TASK_SCHEMA_VERSION,
            "circuit": self.circuit,
            "library": self.library,
            "config": self.config.key_dict(),
        })

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/estimate`` body)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "circuit": self.circuit,
            "library": self.library,
            "config": self.config.to_dict(),
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  default_config: Optional[ExperimentConfig] = None
                  ) -> "PowerQuery":
        """Inverse of :meth:`to_dict`.

        Rejects unknown fields and newer schema versions.  ``config``
        may be omitted (or ``None``): the query then runs at
        ``default_config`` — the serving session's configuration —
        which is what lets a bare ``{"circuit": ..., "library": ...}``
        body do the right thing against a ``repro serve --fast`` server.
        """
        if not isinstance(data, dict):
            raise ExperimentError(
                f"a power query must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(data, {"schema_version", "circuit", "library",
                               "config", "deadline_ms"}, "PowerQuery")
        _check_schema_version(data, "PowerQuery")
        for name in ("circuit", "library"):
            if not isinstance(data.get(name), str) or not data[name]:
                raise ExperimentError(
                    f"power query field {name!r} must be a non-empty "
                    f"string")
        deadline_ms = data.get("deadline_ms")
        if deadline_ms is not None:
            if (isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, (int, float))
                    or deadline_ms <= 0):
                raise ExperimentError(
                    f"power query field 'deadline_ms' must be a positive "
                    f"number, got {deadline_ms!r}")
        config_data = data.get("config")
        if config_data is None:
            config = default_config if default_config is not None \
                else PAPER_CONFIG
        else:
            config = ExperimentConfig.from_dict(config_data)
        return cls(circuit=data["circuit"], library=data["library"],
                   config=config, deadline_ms=deadline_ms)


@dataclass(frozen=True)
class PowerQuoteReport:
    """One power answer: the flow result plus its provenance.

    ``result`` carries the raw :class:`CircuitFlowResult` floats —
    bit-identical to what :meth:`repro.api.Session.run` returns for
    the same query (locked by goldens in the serve tests).  The rest
    is provenance: which build answered (``server_version``), with
    which estimator (``backend``), for which canonicalized subject
    (``circuit`` / ``library``), under exactly which configuration
    (``config_hash``, and ``query_key`` for the full identity), and
    whether the answer was computed or served warm (``cache_status``:
    ``cold`` = computed now, ``hot`` = from the result cache,
    ``coalesced`` = attached to an identical in-flight computation).
    """

    circuit: str
    library: str
    backend: str
    result: CircuitFlowResult
    config: ExperimentConfig = PAPER_CONFIG
    schema_version: int = SCHEMA_VERSION
    server_version: str = ""
    config_hash: str = ""
    query_key: str = ""
    cache_status: str = "cold"
    elapsed_s: float = 0.0
    #: Derived timing metrics (schema v2; ``None`` on records written
    #: before they existed).  ``delay_ns`` is the critical-path delay,
    #: ``fmax_hz`` its reciprocal (``None`` for zero-delay circuits —
    #: JSON cannot carry infinity), ``energy_per_cycle`` is PT/f in
    #: joules and ``pdp`` is PT * delay (the power-delay product the
    #: CNFET literature compares designs by).
    delay_ns: Optional[float] = None
    fmax_hz: Optional[float] = None
    energy_per_cycle: Optional[float] = None
    pdp: Optional[float] = None

    def with_status(self, cache_status: str,
                    elapsed_s: float) -> "PowerQuoteReport":
        """A copy re-stamped for one particular serving of the answer."""
        if cache_status not in CACHE_STATUSES:
            raise ExperimentError(
                f"bad cache_status {cache_status!r}; expected one of "
                f"{', '.join(CACHE_STATUSES)}")
        return replace(self, cache_status=cache_status,
                       elapsed_s=elapsed_s)

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/estimate`` response).

        The timing fields are emitted only when present, so a v1-shaped
        record round-trips to a v1-shaped payload (plus the version
        stamp of the emitting build).
        """
        payload = {
            "schema_version": self.schema_version,
            "server_version": self.server_version,
            "circuit": self.circuit,
            "library": self.library,
            "backend": self.backend,
            "config": self.config.to_dict(),
            "config_hash": self.config_hash,
            "query_key": self.query_key,
            "cache_status": self.cache_status,
            "elapsed_s": self.elapsed_s,
            "result": asdict(self.result),
        }
        for name in ("delay_ns", "fmax_hz", "energy_per_cycle", "pdp"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PowerQuoteReport":
        """Inverse of :meth:`to_dict`; floats round-trip exactly."""
        if not isinstance(data, dict):
            raise ExperimentError(
                f"a power quote must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(
            data,
            {"schema_version", "server_version", "circuit", "library",
             "backend", "config", "config_hash", "query_key",
             "cache_status", "elapsed_s", "result",
             "delay_ns", "fmax_hz", "energy_per_cycle", "pdp"},
            "PowerQuoteReport")
        _check_schema_version(data, "PowerQuoteReport")
        for name in ("circuit", "library", "backend", "result"):
            if name not in data:
                raise ExperimentError(
                    f"power quote is missing the {name!r} field")
        return cls(
            circuit=data["circuit"],
            library=data["library"],
            backend=data["backend"],
            result=_flow_from_payload(data["result"], "PowerQuoteReport"),
            config=ExperimentConfig.from_dict(data["config"])
            if data.get("config") is not None else PAPER_CONFIG,
            schema_version=data.get("schema_version", SCHEMA_VERSION),
            server_version=data.get("server_version", ""),
            config_hash=data.get("config_hash", ""),
            query_key=data.get("query_key", ""),
            cache_status=data.get("cache_status", "cold"),
            elapsed_s=data.get("elapsed_s", 0.0),
            delay_ns=data.get("delay_ns"),
            fmax_hz=data.get("fmax_hz"),
            energy_per_cycle=data.get("energy_per_cycle"),
            pdp=data.get("pdp"),
        )

    @classmethod
    def from_flow(cls, query: PowerQuery, flow: CircuitFlowResult, *,
                  server_version: str = "", cache_status: str = "cold",
                  elapsed_s: float = 0.0) -> "PowerQuoteReport":
        """Wrap a computed flow result for a (canonicalized) query.

        The timing fields derive from the flow result and the query's
        operating point: ``energy_per_cycle`` is PT over the queried
        clock, ``pdp`` PT times the critical delay, ``fmax_hz`` the
        delay's reciprocal (``None`` for gateless circuits).
        """
        return cls(
            circuit=query.circuit,
            library=query.library,
            backend=query.config.backend,
            result=flow,
            config=query.config,
            server_version=server_version,
            config_hash=stable_hash(query.config),
            query_key=query.query_key,
            cache_status=cache_status,
            elapsed_s=elapsed_s,
            delay_ns=flow.delay_s / 1e-9,
            fmax_hz=(1.0 / flow.delay_s) if flow.delay_s > 0.0 else None,
            energy_per_cycle=flow.pt_w / query.config.frequency,
            pdp=flow.pt_w * flow.delay_s,
        )


# -- batch envelopes -----------------------------------------------------------
#
# ``POST /v1/estimate_batch`` carries many queries in one versioned
# envelope; the response mirrors it with one report per query, input
# order.  The envelope is strict like the single-query forms: unknown
# fields, newer schema versions, empty and oversized batches are all
# rejected up front.


def batch_request_payload(queries: List[PowerQuery]) -> Dict[str, Any]:
    """The ``POST /v1/estimate_batch`` body for a list of queries."""
    return {"schema_version": SCHEMA_VERSION,
            "queries": [query.to_dict() for query in queries]}


def queries_from_batch(data: Dict[str, Any],
                       default_config: Optional[ExperimentConfig] = None
                       ) -> List[PowerQuery]:
    """Parse a batch request envelope into its queries (strict)."""
    if not isinstance(data, dict):
        raise ExperimentError(
            f"a batch query must be a JSON object, got "
            f"{type(data).__name__}")
    _reject_unknown(data, {"schema_version", "queries"}, "batch query")
    _check_schema_version(data, "batch query")
    queries = data.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ExperimentError(
            "batch query field 'queries' must be a non-empty list")
    if len(queries) > MAX_BATCH_QUERIES:
        raise ExperimentError(
            f"batch query carries {len(queries)} queries; the limit is "
            f"{MAX_BATCH_QUERIES} — split the batch or run a sweep")
    return [PowerQuery.from_dict(entry, default_config=default_config)
            for entry in queries]


def batch_response_payload(reports: List[PowerQuoteReport]
                           ) -> Dict[str, Any]:
    """The ``/v1/estimate_batch`` response body (one report per query)."""
    return {"schema_version": SCHEMA_VERSION,
            "reports": [report.to_dict() for report in reports]}


def reports_from_batch(data: Dict[str, Any]) -> List[PowerQuoteReport]:
    """Inverse of :func:`batch_response_payload` (strict)."""
    if not isinstance(data, dict):
        raise ExperimentError(
            f"a batch response must be a JSON object, got "
            f"{type(data).__name__}")
    _reject_unknown(data, {"schema_version", "reports"}, "batch response")
    _check_schema_version(data, "batch response")
    reports = data.get("reports")
    if not isinstance(reports, list):
        raise ExperimentError(
            "batch response field 'reports' must be a list")
    return [PowerQuoteReport.from_dict(entry) for entry in reports]


# -- the optimize envelope -----------------------------------------------------
#
# ``POST /v1/optimize`` asks for the Pareto frontier of one circuit
# over a (library x backend x vdd x frequency) design space.  The
# request is an :class:`OptimizeQuery` (axes + objectives + the base
# configuration every point inherits); the response is an
# :class:`OptimizeReport` carrying the non-dominated
# :class:`FrontierPoint`\ s plus accounting of what was pruned
# (timing-infeasible points) and what was dominated.  The evaluation
# itself lives in :mod:`repro.optimize`; this section is pure wire
# shape.

#: Recognized frontier objectives and their optimization direction.
OPTIMIZE_OBJECTIVES: Dict[str, str] = {
    "power": "min",       # total power PT (W)
    "energy": "min",      # energy per cycle, PT / f (J)
    "pdp": "min",         # power-delay product, PT * delay (J)
    "edp": "min",         # energy-delay product (J*s)
    "delay": "min",       # critical-path delay (s)
    "vdd": "min",         # supply voltage (V)
    "frequency": "max",   # operating clock (Hz)
    "fmax": "max",        # maximum feasible clock (Hz)
}

#: Objectives when a query names none: the paper's trade-off space —
#: total power against delivered clock frequency.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("power", "frequency")

#: Upper bound on the candidate grid of one optimize request
#: (libraries x backends x vdds x frequencies).
MAX_OPTIMIZE_POINTS = 4096


def _dedupe(values):
    """Order-preserving dedupe."""
    seen = set()
    out = []
    for value in values:
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out


def _positive_axis(values: Any, name: str) -> Tuple[float, ...]:
    """A sorted, deduplicated tuple of positive floats (strict)."""
    if not isinstance(values, (list, tuple)) or not values:
        raise ExperimentError(
            f"optimize query field {name!r} must be a non-empty list")
    axis: List[float] = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            raise ExperimentError(
                f"optimize query field {name!r} must hold positive "
                f"numbers, got {value!r}")
        axis.append(float(value))
    return tuple(sorted(set(axis)))


def _name_axis(values: Any, name: str) -> Tuple[str, ...]:
    """A deduplicated (order-preserving) tuple of non-empty names."""
    if not isinstance(values, (list, tuple)) or not values:
        raise ExperimentError(
            f"optimize query field {name!r} must be a non-empty list")
    for value in values:
        if not isinstance(value, str) or not value:
            raise ExperimentError(
                f"optimize query field {name!r} must hold non-empty "
                f"strings, got {value!r}")
    return tuple(_dedupe(values))


@dataclass(frozen=True)
class OptimizeQuery:
    """One frontier question: a circuit and the axes to explore.

    Numeric axes are normalized (deduplicated, ascending) at
    construction, so two spellings of the same design space are the
    same query and the frontier ordering is deterministic.  ``config``
    is the base configuration every candidate inherits; its
    ``vdd`` / ``frequency`` / ``backend`` fields are overridden per
    point, everything else (pattern budgets, seed, mapper knobs)
    applies uniformly.
    """

    circuit: str
    libraries: Tuple[str, ...]
    vdds: Tuple[float, ...]
    frequencies: Tuple[float, ...]
    backends: Tuple[str, ...] = ("bitsim",)
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    config: ExperimentConfig = PAPER_CONFIG
    #: Optional time budget for the whole optimization, milliseconds
    #: (same engine-stage enforcement as :class:`PowerQuery`).
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, str) or not self.circuit:
            raise ExperimentError(
                "optimize query field 'circuit' must be a non-empty "
                "string")
        object.__setattr__(
            self, "libraries", _name_axis(self.libraries, "libraries"))
        object.__setattr__(
            self, "backends", _name_axis(self.backends, "backends"))
        object.__setattr__(self, "vdds", _positive_axis(self.vdds, "vdds"))
        object.__setattr__(
            self, "frequencies",
            _positive_axis(self.frequencies, "frequencies"))
        objectives = _name_axis(self.objectives, "objectives")
        for objective in objectives:
            if objective not in OPTIMIZE_OBJECTIVES:
                raise ExperimentError(
                    f"unknown objective {objective!r}; choose from "
                    f"{', '.join(sorted(OPTIMIZE_OBJECTIVES))}")
        object.__setattr__(self, "objectives", objectives)
        if self.deadline_ms is not None:
            if (isinstance(self.deadline_ms, bool)
                    or not isinstance(self.deadline_ms, (int, float))
                    or self.deadline_ms <= 0):
                raise ExperimentError(
                    f"optimize query field 'deadline_ms' must be a "
                    f"positive number, got {self.deadline_ms!r}")
        if self.n_candidates > MAX_OPTIMIZE_POINTS:
            raise ExperimentError(
                f"optimize query spans {self.n_candidates} candidate "
                f"points; the limit is {MAX_OPTIMIZE_POINTS} — prune an "
                f"axis or run a sweep")

    @property
    def n_candidates(self) -> int:
        """Size of the candidate grid before feasibility pruning."""
        return (len(self.libraries) * len(self.backends)
                * len(self.vdds) * len(self.frequencies))

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/optimize`` body)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "circuit": self.circuit,
            "libraries": list(self.libraries),
            "vdds": list(self.vdds),
            "frequencies": list(self.frequencies),
            "backends": list(self.backends),
            "objectives": list(self.objectives),
            "config": self.config.to_dict(),
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  default_config: Optional[ExperimentConfig] = None
                  ) -> "OptimizeQuery":
        """Inverse of :meth:`to_dict` (strict).

        ``backends``, ``objectives`` and ``config`` may be omitted and
        take their defaults (``config`` falling back to the serving
        session's configuration, like :meth:`PowerQuery.from_dict`).
        """
        if not isinstance(data, dict):
            raise ExperimentError(
                f"an optimize query must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(
            data,
            {"schema_version", "circuit", "libraries", "vdds",
             "frequencies", "backends", "objectives", "config",
             "deadline_ms"},
            "OptimizeQuery")
        _check_schema_version(data, "OptimizeQuery")
        config_data = data.get("config")
        if config_data is None:
            config = default_config if default_config is not None \
                else PAPER_CONFIG
        else:
            config = ExperimentConfig.from_dict(config_data)
        kwargs: Dict[str, Any] = {
            "circuit": data.get("circuit"),
            "libraries": data.get("libraries"),
            "vdds": data.get("vdds"),
            "frequencies": data.get("frequencies"),
            "config": config,
            "deadline_ms": data.get("deadline_ms"),
        }
        if data.get("backends") is not None:
            kwargs["backends"] = data["backends"]
        if data.get("objectives") is not None:
            kwargs["objectives"] = data["objectives"]
        if not isinstance(kwargs["circuit"], str) or not kwargs["circuit"]:
            raise ExperimentError(
                "optimize query field 'circuit' must be a non-empty "
                "string")
        for name in ("libraries", "vdds", "frequencies"):
            if kwargs[name] is None:
                raise ExperimentError(
                    f"optimize query is missing the {name!r} field")
        return cls(**kwargs)


#: Every scalar field a frontier point carries.
_FRONTIER_POINT_FIELDS = (
    "library", "backend", "vdd", "frequency", "gate_count", "delay_ns",
    "fmax_hz", "slack_ns", "pd_w", "ps_w", "pg_w", "pt_w",
    "energy_per_cycle", "pdp", "edp_js", "query_key", "cache_status",
)


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated operating point with its full metric vector.

    Carries everything the dominance test consumed (so a client can
    re-verify the frontier), plus provenance: ``query_key`` is the
    content hash of the equivalent single-point :class:`PowerQuery`
    (frontier points and ``/v1/estimate`` answers share cache
    identity), ``cache_status`` records how this serving obtained the
    point.
    """

    library: str
    backend: str
    vdd: float
    frequency: float          # Hz (the operating clock of this point)
    gate_count: int
    delay_ns: float           # critical-path delay
    fmax_hz: Optional[float]  # None = unbounded (zero-delay circuit)
    slack_ns: float           # clock period minus critical delay
    pd_w: float
    ps_w: float
    pg_w: float
    pt_w: float
    energy_per_cycle: float   # J (PT / f)
    pdp: float                # J (PT * delay)
    edp_js: float
    query_key: str = ""
    cache_status: str = "cold"

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name)
                for name in _FRONTIER_POINT_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FrontierPoint":
        if not isinstance(data, dict):
            raise ExperimentError(
                f"a frontier point must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(data, set(_FRONTIER_POINT_FIELDS),
                        "FrontierPoint")
        missing = sorted(set(_FRONTIER_POINT_FIELDS)
                         - {"query_key", "cache_status"} - set(data))
        if missing:
            raise ExperimentError(
                f"frontier point is missing fields: {', '.join(missing)}")
        return cls(**data)


@dataclass(frozen=True)
class OptimizeReport:
    """The ``/v1/optimize`` answer: the frontier plus accounting.

    ``frontier`` holds only non-dominated, timing-feasible points, in
    the deterministic order :func:`repro.optimize.pareto_frontier`
    defines.  The counters reconcile: ``n_candidates`` (the full grid)
    = ``n_infeasible`` + ``n_dominated`` + ``len(frontier)``.
    """

    circuit: str
    objectives: Tuple[str, ...]
    frontier: Tuple[FrontierPoint, ...]
    n_candidates: int
    n_infeasible: int
    n_dominated: int
    schema_version: int = SCHEMA_VERSION
    server_version: str = ""
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Strict plain-JSON form (the ``POST /v1/optimize`` response)."""
        return {
            "schema_version": self.schema_version,
            "server_version": self.server_version,
            "circuit": self.circuit,
            "objectives": list(self.objectives),
            "frontier": [point.to_dict() for point in self.frontier],
            "n_candidates": self.n_candidates,
            "n_infeasible": self.n_infeasible,
            "n_dominated": self.n_dominated,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OptimizeReport":
        """Inverse of :meth:`to_dict` (strict)."""
        if not isinstance(data, dict):
            raise ExperimentError(
                f"an optimize report must be a JSON object, got "
                f"{type(data).__name__}")
        _reject_unknown(
            data,
            {"schema_version", "server_version", "circuit", "objectives",
             "frontier", "n_candidates", "n_infeasible", "n_dominated",
             "elapsed_s"},
            "OptimizeReport")
        _check_schema_version(data, "OptimizeReport")
        for name in ("circuit", "objectives", "frontier"):
            if name not in data:
                raise ExperimentError(
                    f"optimize report is missing the {name!r} field")
        frontier = data["frontier"]
        if not isinstance(frontier, list):
            raise ExperimentError(
                "optimize report field 'frontier' must be a list")
        return cls(
            circuit=data["circuit"],
            objectives=tuple(data["objectives"]),
            frontier=tuple(FrontierPoint.from_dict(entry)
                           for entry in frontier),
            n_candidates=data.get("n_candidates", 0),
            n_infeasible=data.get("n_infeasible", 0),
            n_dominated=data.get("n_dominated", 0),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
            server_version=data.get("server_version", ""),
            elapsed_s=data.get("elapsed_s", 0.0),
        )


# -- the store record shape ----------------------------------------------------
#
# One completed point, as persisted by the sweep result stores and as
# appended by the serving engine.  The shape predates this module (it
# is what every existing sweep store on disk holds), so the helpers
# here are the compatibility contract: ``store_record`` writes exactly
# the historical layout and ``flow_from_record`` reads it back.


def store_record(query: PowerQuery, flow: CircuitFlowResult,
                 elapsed_s: float) -> Dict[str, Any]:
    """The stored form of one completed point.

    ``result`` holds the raw :class:`CircuitFlowResult` floats; JSON
    round-trips doubles exactly, so a record read back compares
    bit-identically to the in-memory computation.
    """
    return {
        "task_key": query.query_key,
        "circuit": query.circuit,
        "library": query.library,
        "config": query.config.to_dict(),
        "result": asdict(flow),
        "elapsed_s": elapsed_s,
    }


def flow_from_record(record: Dict[str, Any]) -> CircuitFlowResult:
    """Rehydrate the :class:`CircuitFlowResult` of a stored record."""
    return _flow_from_payload(record.get("result"), "store record")


def quote_from_record(record: Dict[str, Any], *,
                      server_version: str = "",
                      cache_status: str = "hot") -> PowerQuoteReport:
    """Lift a stored sweep record into a service response.

    This is what lets an :class:`~repro.serve.Engine` warm-start from
    a sweep store: the record's task key *is* the query key.
    """
    config = ExperimentConfig.from_dict(record.get("config", {}))
    query = PowerQuery(circuit=record["circuit"],
                       library=record["library"], config=config)
    return PowerQuoteReport.from_flow(
        query, flow_from_record(record), server_version=server_version,
        cache_status=cache_status, elapsed_s=0.0)
