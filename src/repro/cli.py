"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment harnesses so the reproduction can be
driven without writing Python:

* ``table1 [--fast] [--benchmarks A,B,...]`` — the Table 1 experiment;
* ``library`` — the Section 4 gate-level study;
* ``figures`` — Fig. 2 / Fig. 4 / Fig. 5 demonstrations;
* ``genlib <LIBRARY> [-o FILE]`` — export a characterized library in
  genlib format (any key or alias from ``repro libraries``);
* ``cell <NAME>`` — per-vector leakage report of one library cell;
* ``libraries`` — every registered library and estimator backend;
* ``circuits`` — every registered circuit (the 12 benchmarks plus any
  ``--blif`` registrations);
* ``techs`` — the calibrated technology summaries;
* ``sweep run/report/status/spec`` — declarative scenario grids over
  vdd x frequency x fanout x patterns x library x circuit with a
  resumable result store (see :mod:`repro.sweep`);
* ``serve`` — the long-lived estimation server (:mod:`repro.serve`);
  ``--workers N`` runs the self-healing multi-process fleet
  (:mod:`repro.serve.fleet`);
* ``fleet status`` — per-worker liveness and fleet-wide counters from
  a running supervisor's aggregated ``/v1/healthz``;
* ``query`` — one power query against a running server, or a whole
  operating-point grid in one batched request (``--grid``).

Libraries and circuits are resolved through :mod:`repro.registry`, so
anything registered there — including third-party libraries and
``--blif FILE`` netlists — is addressable from every
``--library``/``--libraries``/``--circuits`` flag.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devices import CMOS_32NM, CNTFET_32NM, technology_report


def _register_blifs(paths: Optional[List[str]]) -> None:
    """Register ``--blif`` netlists before a command runs."""
    if not paths:
        return
    from repro.registry import register_blif_circuit

    for path in paths:
        try:
            entry = register_blif_circuit(path)
        except Exception as exc:
            raise SystemExit(str(exc))
        # stderr: several commands (sweep spec, query --json) emit
        # machine-readable stdout that this note must not corrupt.
        print(f"registered circuit {entry.key!r} from {path}",
              file=sys.stderr)


def _cmd_table1(args) -> int:
    from dataclasses import replace

    from repro.experiments.config import FAST_CONFIG, PAPER_CONFIG
    from repro.experiments.table1 import reproduce_table1

    _register_blifs(args.blif)
    config = FAST_CONFIG if args.fast else PAPER_CONFIG
    if args.backend:
        from repro.sim.backends import available_backends

        if args.backend not in available_backends():
            raise SystemExit(
                f"unknown estimator backend {args.backend!r}; choose "
                f"from {', '.join(available_backends())}")
        config = replace(config, backend=args.backend)
    benchmarks = (list(_circuit_values(args.benchmarks))
                  if args.benchmarks else None)
    result = reproduce_table1(config, benchmarks=benchmarks,
                              verbose=not args.quiet, jobs=args.jobs)
    print(result.render())
    return 0


def _cmd_library(args) -> int:
    from repro.experiments.library_power import reproduce_library_study

    study = reproduce_library_study(jobs=args.jobs)
    print(study.render())
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments.figures import (
        reproduce_fig2_transmission,
        reproduce_fig4_patterns,
        reproduce_fig5_flow,
    )

    print(reproduce_fig2_transmission().render())
    print()
    print(reproduce_fig4_patterns().render())
    print()
    print(reproduce_fig5_flow().render())
    return 0


def _library_by_key(key: str):
    from repro import registry
    from repro.errors import ExperimentError

    try:
        return registry.cached_library(key)
    except ExperimentError as exc:
        raise SystemExit(str(exc))


def _cmd_libraries(args) -> int:
    from repro import foundry, registry
    from repro.sim.backends import available_backends

    # The same rows /v1/libraries serves, through the same formatter —
    # characterized-vdd and artifact provenance cannot drift between
    # the CLI table and the service payload.
    for row in foundry.library_listing():
        for line in foundry.format_library_listing([row],
                                                   verbose=args.verbose):
            print(line)
        if args.verbose:
            library = registry.cached_library(row["key"])
            print(f"    {len(library)} cells, technology "
                  f"{library.tech.name}, vdd={library.tech.vdd:g}V")
    print(f"estimator backends: {', '.join(available_backends())}")
    return 0


def _cmd_circuits(args) -> int:
    from repro import registry

    _register_blifs(args.blif)
    for key in registry.available_circuits():
        entry = registry.circuit_entry(key)
        aliases = f" (aliases: {', '.join(entry.aliases)})" \
            if entry.aliases else ""
        paper = "" if entry.paper is not None else "  [user circuit]"
        print(f"{key}{aliases}{paper}")
        detail = entry.description or entry.function
        if detail:
            print(f"    {detail}")
        if args.verbose:
            aig = registry.cached_circuit(key)
            print(f"    {aig.n_pis} inputs, {aig.n_pos} outputs, "
                  f"{aig.n_nodes} AND nodes")
    return 0


def _cmd_genlib(args) -> int:
    from repro.gates.genlib import write_genlib

    library = _library_by_key(args.library)
    text = write_genlib(library)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(library)} cells)")
    else:
        print(text, end="")
    return 0


def _cmd_cell(args) -> int:
    from repro.power.vector_report import cell_leakage_report

    library = _library_by_key(args.library)
    cell = library.cell(args.name)
    print(f"{cell.name}: {cell.description}  "
          f"(pins {', '.join(cell.inputs)}, {cell.n_devices} devices)")
    print(cell_leakage_report(cell, library).render())
    return 0


def _cmd_techs(args) -> int:
    print(technology_report(CMOS_32NM))
    print(technology_report(CNTFET_32NM))
    return 0


# -- foundry subcommands ------------------------------------------------------

def _foundry_cache(args):
    from pathlib import Path

    from repro.cache import DiskCache, default_cache

    if getattr(args, "cache_dir", None):
        return DiskCache(root=Path(args.cache_dir), enabled=True)
    return default_cache()


def _foundry_axes(args):
    libraries = (_csv_values(args.libraries, str)
                 if args.libraries else None)
    vdds = _csv_values(args.vdd, float) if args.vdd else (None,)
    return libraries, vdds


def _cmd_foundry_build(args) -> int:
    from repro import foundry
    from repro.errors import ExperimentError

    libraries, vdds = _foundry_axes(args)
    try:
        report = foundry.characterize(
            libraries, vdds, jobs=args.jobs, cache=_foundry_cache(args),
            force=args.force)
    except ExperimentError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    return 1 if report.counts()["failed"] else 0


def _cmd_foundry_list(args) -> int:
    from repro import foundry

    cache = _foundry_cache(args)
    rows = foundry.library_listing(cache)
    for line in foundry.format_library_listing(rows, verbose=True):
        print(line)
    n = sum(len(row["artifacts"]) for row in rows)
    print(f"{n} artifact(s) in {cache.root}")
    return 0


def _cmd_foundry_verify(args) -> int:
    from repro import foundry, registry

    cache = _foundry_cache(args)
    libraries, vdds = _foundry_axes(args)
    if libraries is None and args.vdd is None:
        # No axes given: verify exactly what the store holds.
        tasks = [(entry["library"], entry["vdd"])
                 for entry in foundry.store_index(cache).values()]
        if not tasks:
            print("foundry verify: store is empty")
            return 0
    else:
        if libraries is None:
            libraries = registry.available_libraries()
        tasks = [(name, vdd) for name in libraries for vdd in vdds]
    failures = 0
    for name, vdd in sorted(tasks, key=lambda t: (t[0], t[1] or 0.0)):
        outcome = foundry.verify_artifact(name, vdd, cache)
        vdd_text = "native" if vdd is None else f"{vdd:g}V"
        print(f"{outcome['status']:>12}  {outcome['library']} @ "
              f"{vdd_text}  stored={outcome['stored_hash'] or '-'} "
              f"rebuilt={outcome['rebuilt_hash'] or '-'}")
        if outcome["status"] != "ok":
            failures += 1
    print(f"foundry verify: {failures} problem(s)")
    return 1 if failures else 0


def _cmd_foundry_export(args) -> int:
    from repro import foundry

    libraries, vdds = _foundry_axes(args)
    exported = foundry.export_store(
        args.target, libraries,
        None if args.vdd is None else vdds,
        cache=_foundry_cache(args))
    print(f"exported {exported} artifact(s) to {args.target}")
    return 0 if exported else 1


# -- sweep subcommands --------------------------------------------------------

def _csv_values(text: str, cast):
    return tuple(cast(part) for part in text.split(",") if part)


def _circuit_values(text: str):
    """Split a circuits axis on commas — except inside a family spec's
    parentheses: ``t481,synth:rand(gates=5,seed=1)`` is two values."""
    parts, current, depth = [], [], 0
    for char in text:
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        current.append(char)
    parts.append("".join(current))
    return tuple(part for part in parts if part)


def _parse_bool_axis(text: str):
    """``on`` / ``off`` / ``both`` -> synthesize axis tuple."""
    axis = {"on": (True,), "off": (False,), "both": (True, False)}
    if text not in axis:
        raise SystemExit(f"--synthesize must be on, off or both (got {text!r})")
    return axis[text]


def _spec_from_args(args):
    """Build a SweepSpec from ``--spec FILE`` plus axis-flag overrides."""
    from repro.sweep.spec import SweepSpec

    data = SweepSpec.from_file(args.spec).to_dict() if args.spec else {}
    overrides = {
        "vdd": (args.vdd, lambda text: _csv_values(text, float)),
        "frequency": (args.frequency, lambda text: _csv_values(text, float)),
        "fanout": (args.fanout, lambda text: _csv_values(text, int)),
        "n_patterns": (args.patterns, lambda text: _csv_values(text, int)),
        "circuits": (args.circuits, _circuit_values),
        "libraries": (args.libraries, lambda text: _csv_values(text, str)),
        "synthesize": (args.synthesize, _parse_bool_axis),
        "seed": (args.seed, int),
        "backend": (args.backend, str),
    }
    for name, (value, parse) in overrides.items():
        if value is not None:
            data[name] = parse(value)
    return SweepSpec.from_dict(data)


def _cmd_sweep_run(args) -> int:
    from repro.sweep.runner import run_sweep
    from repro.sweep.store import open_store

    _register_blifs(args.blif)
    spec = _spec_from_args(args)
    store = open_store(args.store)
    report = run_sweep(spec, store, jobs=args.jobs,
                       verbose=not args.quiet)
    print(report.render())
    return 0


def _cmd_sweep_report(args) -> int:
    from repro.sweep.report import render_csv, render_table1, render_vdd_series
    from repro.sweep.store import require_store

    records = require_store(args.store).records()
    if args.format == "csv":
        text = render_csv(records)
    elif args.pivot == "vdd":
        text = render_vdd_series(records)
    else:
        text = render_table1(records)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(records)} points)")
    else:
        print(text, end="")
    return 0


def _cmd_sweep_status(args) -> int:
    from repro.sweep.store import open_store_for_read, sweep_status

    _register_blifs(args.blif)
    spec = _spec_from_args(args)
    status = sweep_status(spec, open_store_for_read(args.store))
    print(f"sweep {status['spec_hash'][:12]}: "
          f"total={status['total']} done={status['done']} "
          f"missing={status['missing']} store={args.store}")
    for point in status["missing_preview"]:
        print(f"  missing: {point['circuit']} / {point['library']} "
              f"vdd={point['vdd']:g} f={point['frequency']:g} "
              f"fo={point['fanout']} n={point['n_patterns']}")
    if status["missing"] > len(status["missing_preview"]):
        print(f"  ... and {status['missing'] - len(status['missing_preview'])}"
              f" more")
    # Exit code doubles as a completeness check for CI gating.
    return 0 if status["missing"] == 0 else 1


def _cmd_sweep_spec(args) -> int:
    _register_blifs(args.blif)
    spec = _spec_from_args(args)
    text = spec.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({spec.size()} points)")
    else:
        print(text, end="")
    return 0


# -- serve / query ------------------------------------------------------------

def _config_from_flags(args):
    """An ExperimentConfig from the serve/query operating-point flags,
    or ``None`` when no flag was given (meaning: server default)."""
    from dataclasses import replace

    from repro.experiments.config import FAST_CONFIG, PAPER_CONFIG

    overrides = {}
    for flag, field in (("vdd", "vdd"), ("frequency", "frequency"),
                        ("fanout", "fanout"), ("patterns", "n_patterns"),
                        ("state_patterns", "state_patterns"),
                        ("seed", "seed"), ("backend", "backend"),
                        ("sim_kernel", "sim_kernel")):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if not args.fast and not overrides:
        return None
    base = FAST_CONFIG if args.fast else PAPER_CONFIG
    return replace(base, **overrides)


def _add_config_flags(parser) -> None:
    """Operating-point flags shared by ``serve`` and ``query``."""
    parser.add_argument("--fast", action="store_true",
                        help="16K patterns instead of 640K")
    parser.add_argument("--vdd", type=float, default=None, metavar="V")
    parser.add_argument("--frequency", type=float, default=None,
                        metavar="HZ")
    parser.add_argument("--fanout", type=int, default=None, metavar="N")
    parser.add_argument("--patterns", type=int, default=None, metavar="N",
                        help="random-pattern budget")
    parser.add_argument("--state-patterns", type=int, default=None,
                        metavar="N", dest="state_patterns",
                        help="leakage-state histogram budget")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="estimator backend (default bitsim)")
    parser.add_argument("--sim-kernel", default=None, metavar="NAME",
                        dest="sim_kernel",
                        help="bit-parallel kernel: auto, gate or array "
                             "(bit-identical; auto picks array for "
                             "large netlists)")


def _serve_fleet(args, config) -> int:
    """``repro serve --workers N``: the supervised multi-process fleet."""
    import signal

    from repro import __version__
    from repro.serve import FleetConfig, FleetSupervisor

    control_port = args.control_port
    if control_port is None:
        # Service port + 1 by convention; OS-assigned when the service
        # port itself is OS-assigned.
        control_port = args.port + 1 if args.port else 0
    max_inflight = args.max_inflight if args.max_inflight > 0 else None
    fleet = FleetSupervisor(FleetConfig(
        workers=args.workers, host=args.host, port=args.port,
        control_port=control_port, config=config, store=args.store,
        max_inflight=max_inflight, drain_timeout_s=args.drain_timeout))
    fleet.start()
    print(f"repro-fleet {__version__}: {args.workers} workers on "
          f"{fleet.service_url} (control {fleet.control_url}, "
          f"backend={config.backend}, n_patterns={config.n_patterns})",
          flush=True)

    def on_signal(signum, frame):
        fleet.initiate_shutdown(signal.Signals(signum).name)

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    fleet.run_forever()
    print("fleet shutdown complete", flush=True)
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro import __version__
    from repro.api import Session
    from repro.experiments.config import PAPER_CONFIG
    from repro.serve import Engine, serve
    from repro.sim.backends import available_backends

    _register_blifs(args.blif)
    config = _config_from_flags(args) or PAPER_CONFIG
    # Fail at startup, not on the first client request, for a typo'd
    # backend (same up-front check the table1 command makes).
    if config.backend not in available_backends():
        raise SystemExit(
            f"unknown estimator backend {config.backend!r}; choose "
            f"from {', '.join(available_backends())}")
    if args.workers > 1:
        return _serve_fleet(args, config)
    engine = Engine(Session(config), store=args.store)
    max_inflight = args.max_inflight if args.max_inflight > 0 else None
    server = serve(engine, host=args.host, port=args.port,
                   max_inflight=max_inflight, ready=False)
    print(f"repro-serve {__version__} listening on {server.url} "
          f"(backend={config.backend}, n_patterns={config.n_patterns})",
          flush=True)

    # Graceful shutdown: stop admitting (readiness flips 503 so load
    # balancers stop routing here), let in-flight requests finish up
    # to --drain-timeout, flush the result store, exit 0.  The drain
    # runs in its own thread because server.shutdown() deadlocks when
    # called from the thread running serve_forever() — which is where
    # Python delivers signals.
    drained = threading.Event()

    def drain(signame: str) -> None:
        if drained.is_set():
            return
        drained.set()
        print(f"{signame}: draining "
              f"({server.inflight} request(s) in flight)", flush=True)
        server.begin_drain()
        if not server.wait_idle(timeout=args.drain_timeout):
            print(f"drain timeout of {args.drain_timeout:g}s hit; "
                  f"shutting down with requests in flight", flush=True)
        engine.flush()
        server.shutdown()

    def on_signal(signum, frame):
        threading.Thread(target=drain, name="drain",
                         args=(signal.Signals(signum).name,),
                         daemon=True).start()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    server.mark_ready()
    try:
        server.serve_forever()
    finally:
        server.server_close()
    print("shutdown complete", flush=True)
    return 0


def _cmd_fleet_status(args) -> int:
    """``repro fleet status``: render the supervisor's aggregated
    ``/v1/healthz`` as a table (exit 1 when the fleet is degraded)."""
    import json as json_module
    import urllib.request

    url = args.url.rstrip("/") + "/v1/healthz"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            payload = json_module.loads(response.read().decode("utf-8"))
    except Exception as exc:
        raise SystemExit(f"cannot reach fleet supervisor at {url}: {exc}")
    if args.json:
        print(json_module.dumps(payload, indent=2))
        return 0 if payload.get("status") == "ok" else 1
    print(f"fleet {payload.get('status', '?')}: "
          f"{payload.get('n_live', 0)}/{payload.get('n_workers', 0)} live, "
          f"{payload.get('n_ready', 0)} ready, "
          f"{payload.get('n_benched', 0)} benched, "
          f"{payload.get('restarts_total', 0)} restart(s), "
          f"{payload.get('deaths_total', 0)} death(s)  "
          f"[supervisor pid {payload.get('pid')}, "
          f"up {payload.get('uptime_s', 0):.0f}s, "
          f"{'SO_REUSEPORT' if payload.get('reuse_port') else 'inherited FD'}]")
    print(f"  service {payload.get('service_url')}  via {args.url}")
    print(f"{'slot':>4} {'state':>8} {'pid':>8} {'ready':>5} "
          f"{'restarts':>8} {'deaths':>6} {'hb-age/s':>8} {'inflight':>8} "
          f"{'last exit':<24}")
    for row in payload.get("workers", ()):
        age = row.get("heartbeat_age_s")
        print(f"{row.get('slot', '?'):>4} {row.get('state', '?'):>8} "
              f"{row.get('pid') or '-':>8} "
              f"{'yes' if row.get('ready') else 'no':>5} "
              f"{row.get('restarts', 0):>8} {row.get('deaths', 0):>6} "
              f"{age if age is not None else '-':>8} "
              f"{row.get('inflight', '-'):>8} "
              f"{row.get('last_exit') or '-':<24}")
    aggregate = payload.get("aggregate") or {}
    counters = aggregate.get("counters") or {}
    caches = aggregate.get("caches") or {}
    disk = caches.get("disk") or {}
    answers = (counters.get("results.hot", 0)
               + counters.get("results.cold", 0)
               + counters.get("results.coalesced", 0))
    print(f"  aggregate: {answers} answer(s) "
          f"({counters.get('results.cold', 0)} cold), "
          f"{counters.get('stats.cold', 0)} simulation(s) fleet-wide, "
          f"{counters.get('stats.hot', 0)} hot stats hit(s), "
          f"single-flight leader/follower/takeover = "
          f"{disk.get('flight_leader', 0)}/"
          f"{disk.get('flight_follower', 0)}/"
          f"{disk.get('flight_takeover', 0)}")
    return 0 if payload.get("status") == "ok" else 1


#: Axes ``repro query --grid`` may sweep, with their value parsers.
#: These are the *pricing* axes: the server prices every point of the
#: grid off one cached simulation.
_GRID_AXES = {"vdd": float, "frequency": float, "fanout": int}


def _parse_grid(values: List[str]):
    """``--grid vdd=0.8,0.9,frequency=1e9,2e9`` -> ``{axis: tuple}``.

    Each ``--grid`` argument holds one or more ``axis=v1,v2,...``
    segments (a new segment starts wherever ``,name=`` appears, so the
    flag reads naturally with commas); repeated flags merge.
    """
    import re

    axes = {}
    for text in values:
        for part in re.split(r",(?=[A-Za-z_]+=)", text.strip()):
            name, sep, csv = part.partition("=")
            name = name.strip()
            if not sep or name not in _GRID_AXES:
                raise SystemExit(
                    f"--grid axes are {', '.join(_GRID_AXES)} "
                    f"(got {part!r})")
            try:
                parsed = tuple(_GRID_AXES[name](value)
                               for value in csv.split(",") if value)
            except ValueError:
                raise SystemExit(f"bad --grid values in {part!r}")
            if not parsed:
                raise SystemExit(f"--grid axis {name!r} has no values")
            axes[name] = tuple(dict.fromkeys(axes.get(name, ()) + parsed))
    return axes


def _cmd_query_grid(args, client) -> int:
    """One batched ``/v1/estimate_batch`` round trip over a point grid."""
    import json as json_module
    from dataclasses import replace
    from itertools import product

    from repro.errors import ExperimentError
    from repro.experiments.config import ExperimentConfig
    from repro.schema import PowerQuery

    axes = _parse_grid(args.grid)
    base = _config_from_flags(args)
    try:
        if base is None:
            # No local operating-point flags: anchor the grid on the
            # *server's* default configuration.
            base = ExperimentConfig.from_dict(
                client.healthz()["default_config"])
        queries = [
            PowerQuery(circuit=args.circuit, library=args.library,
                       config=replace(base, **dict(zip(axes, values))),
                       deadline_ms=args.deadline_ms)
            for values in product(*axes.values())]
        reports = client.estimate_batch(queries)
    except ExperimentError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json_module.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    first = reports[0]
    print(f"{first.circuit} on {first.library} [{first.backend}] "
          f"via {args.url} — {len(reports)} operating points")
    print(f"{'vdd/V':>7} {'f/GHz':>8} {'fanout':>6} {'PD/uW':>10} "
          f"{'PS/uW':>10} {'PT/uW':>10} {'E/cyc/fJ':>10} {'PDP/fJ':>10} "
          f"{'EDP/1e-24Js':>12} {'cache':>9} {'timing':>7}")
    infeasible = 0
    for report in reports:
        r = report.result
        c = report.config
        # Schema-v1 servers do not send the timing fields; derive them
        # from the flow result so old servers still render fully.
        delay_ns = (report.delay_ns if report.delay_ns is not None
                    else r.delay_ps / 1e3)
        energy = (report.energy_per_cycle
                  if report.energy_per_cycle is not None
                  else r.pt_uw * 1e-6 / c.frequency)
        pdp = (report.pdp if report.pdp is not None
               else r.pt_uw * 1e-6 * delay_ns * 1e-9)
        feasible = delay_ns * 1e-9 <= 1.0 / c.frequency
        infeasible += not feasible
        print(f"{c.vdd:7.2f} {c.frequency / 1e9:8.3f} {c.fanout:6d} "
              f"{r.pd_uw:10.3f} {r.ps_uw:10.4f} {r.pt_uw:10.3f} "
              f"{energy / 1e-15:10.3f} {pdp / 1e-15:10.3f} "
              f"{r.edp_paper_units:12.3f} {report.cache_status:>9} "
              f"{'ok' if feasible else 'INFEAS':>7}")
    cold = sum(1 for r in reports if r.cache_status == "cold")
    print(f"  {cold} cold / {len(reports) - cold} warm, "
          f"server={first.server_version}")
    if infeasible:
        print(f"  {infeasible} point(s) timing-INFEASIBLE: clock period "
              f"shorter than the critical path — the estimate is the "
              f"would-be power, not an operable design point "
              f"(try 'repro optimize' to prune them)")
    return 0


def _cmd_query(args) -> int:
    import json as json_module

    from repro.errors import ExperimentError
    from repro.resilience import RetryPolicy
    from repro.serve import Client

    retry = RetryPolicy(retries=args.retries) if args.retries > 0 else None
    client = Client(args.url, timeout=args.timeout, retry=retry)
    if args.grid:
        return _cmd_query_grid(args, client)
    try:
        report = client.estimate(args.circuit, args.library,
                                 _config_from_flags(args),
                                 deadline_ms=args.deadline_ms)
    except ExperimentError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
        return 0
    r = report.result
    print(f"{report.circuit} on {report.library} "
          f"[{report.backend}] via {args.url}")
    print(f"  gates={r.gate_count} delay={r.delay_ps:.1f}ps "
          f"PD={r.pd_uw:.3f}uW PS={r.ps_uw:.4f}uW PT={r.pt_uw:.3f}uW "
          f"EDP={r.edp_paper_units:.3f}e-24Js")
    print(f"  cache={report.cache_status} elapsed={report.elapsed_s:.3f}s "
          f"server={report.server_version} key={report.query_key[:12]}")
    return 0


def _render_frontier(report, where: str, fmt: str) -> None:
    """Print an OptimizeReport as a table, CSV or JSON."""
    import csv as csv_module
    import json as json_module
    import sys

    from repro.schema import _FRONTIER_POINT_FIELDS

    if fmt == "json":
        print(json_module.dumps(report.to_dict(), indent=2))
        return
    if fmt == "csv":
        writer = csv_module.writer(sys.stdout)
        writer.writerow(_FRONTIER_POINT_FIELDS)
        for point in report.frontier:
            row = point.to_dict()
            writer.writerow([row.get(field, "")
                             for field in _FRONTIER_POINT_FIELDS])
        return
    print(f"{report.circuit}: {len(report.frontier)}-point Pareto "
          f"frontier over ({', '.join(report.objectives)}) via {where}")
    print(f"  {report.n_candidates} candidates = "
          f"{report.n_infeasible} timing-infeasible + "
          f"{report.n_dominated} dominated + {len(report.frontier)} "
          f"frontier  [{report.elapsed_s:.3f}s, "
          f"server {report.server_version}]")
    if not report.frontier:
        print("  (empty frontier: every point is timing-infeasible — "
              "lower the frequency axis or raise vdd)")
        return
    print(f"{'library':>24} {'backend':>8} {'vdd/V':>6} {'f/GHz':>8} "
          f"{'delay/ns':>9} {'slack/ns':>9} {'PT/uW':>9} {'E/cyc/fJ':>9} "
          f"{'PDP/fJ':>9} {'EDP/1e-24Js':>12} {'cache':>5}")
    for p in report.frontier:
        print(f"{p.library:>24} {p.backend:>8} {p.vdd:6.2f} "
              f"{p.frequency / 1e9:8.3f} {p.delay_ns:9.3f} "
              f"{p.slack_ns:+9.3f} {p.pt_w / 1e-6:9.3f} "
              f"{p.energy_per_cycle / 1e-15:9.3f} {p.pdp / 1e-15:9.3f} "
              f"{p.edp_js / 1e-24:12.3f} {p.cache_status:>5}")


def _cmd_optimize(args) -> int:
    from dataclasses import replace

    from repro.errors import ExperimentError
    from repro.experiments.config import FAST_CONFIG, PAPER_CONFIG

    _register_blifs(args.blif)
    # vdd / frequency / backend are *axes* here; the base config only
    # contributes the shared knobs (pattern budget, fanout, seed, ...).
    base = FAST_CONFIG if args.fast else PAPER_CONFIG
    overrides = {}
    for flag, field in (("fanout", "fanout"), ("patterns", "n_patterns"),
                        ("state_patterns", "state_patterns"),
                        ("seed", "seed"), ("sim_kernel", "sim_kernel")):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    config = replace(base, **overrides) if overrides else base

    libraries = (_csv_values(args.libraries, str)
                 if args.libraries else None)
    vdds = _csv_values(args.vdd, float) if args.vdd else None
    frequencies = (_csv_values(args.frequency, float)
                   if args.frequency else None)
    backends = _csv_values(args.backend, str) if args.backend else None
    objectives = (_csv_values(args.objectives, str)
                  if args.objectives else None)
    try:
        if args.url:
            from repro import registry
            from repro.resilience import RetryPolicy
            from repro.schema import DEFAULT_OBJECTIVES, OptimizeQuery
            from repro.serve import Client

            query = OptimizeQuery(
                circuit=args.circuit,
                libraries=(libraries if libraries
                           else registry.PAPER_LIBRARIES),
                vdds=vdds if vdds else (config.vdd,),
                frequencies=(frequencies if frequencies
                             else (config.frequency,)),
                backends=backends if backends else (config.backend,),
                objectives=(objectives if objectives
                            else DEFAULT_OBJECTIVES),
                config=config,
                deadline_ms=args.deadline_ms)
            retry = (RetryPolicy(retries=args.retries)
                     if args.retries > 0 else None)
            client = Client(args.url, timeout=args.timeout, retry=retry)
            report = client.optimize(query)
            where = args.url
        else:
            from repro.api import Session

            session = Session(config=config, libraries=libraries)
            report = session.optimize(
                args.circuit, vdds=vdds, frequencies=frequencies,
                backends=backends, objectives=objectives,
                store=args.store, deadline_ms=args.deadline_ms)
            where = "local session"
    except ExperimentError as exc:
        raise SystemExit(str(exc))
    _render_frontier(report, where, args.format)
    return 0


def _add_axis_flags(parser, with_spec: bool = True) -> None:
    """The shared grid-definition flags of the sweep subcommands."""
    if with_spec:
        parser.add_argument("--spec", default=None, metavar="FILE",
                            help="JSON sweep spec; axis flags below "
                                 "override its entries")
    parser.add_argument("--vdd", default=None, metavar="V1,V2,...",
                        help="supply voltages in volts (default 0.9)")
    parser.add_argument("--frequency", default=None, metavar="F1,F2,...",
                        help="clock frequencies in Hz (default 1e9)")
    parser.add_argument("--fanout", default=None, metavar="N1,N2,...",
                        help="fanout loads (default 3)")
    parser.add_argument("--patterns", default=None, metavar="N1,N2,...",
                        help="random-pattern budgets (default 640000)")
    parser.add_argument("--circuits", default=None, metavar="A,B,...",
                        help="benchmark subset (default: all 12); "
                             "family specs like synth:rand(gates=5000,"
                             "seed=1) are accepted (commas inside "
                             "parentheses do not split)")
    parser.add_argument("--libraries", default=None, metavar="L1,L2,...",
                        help="registered library keys or aliases (see "
                             "'repro libraries'; default: the paper's "
                             "three)")
    parser.add_argument("--synthesize", default=None,
                        choices=["on", "off", "both"],
                        help="resyn2rs before mapping (default on)")
    parser.add_argument("--seed", default=None, type=int,
                        help="pattern RNG seed (default 2010)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="estimator backend for every point "
                             "(default bitsim)")
    parser.add_argument("--blif", action="append", default=None,
                        metavar="FILE",
                        help="register a BLIF netlist as a circuit "
                             "before running (repeatable); it is then "
                             "a valid --circuits value")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Power Consumption of Logic Circuits "
                    "in Ambipolar Carbon Nanotube Technology' (DATE 2010)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--fast", action="store_true",
                        help="16K patterns instead of 640K")
    table1.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset (any "
                             "registered circuit name)")
    table1.add_argument("--blif", action="append", default=None,
                        metavar="FILE",
                        help="register a BLIF netlist as a circuit "
                             "(repeatable); name it in --benchmarks to "
                             "run it")
    table1.add_argument("--quiet", action="store_true")
    table1.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the circuit x library "
                             "grid (0 = all CPUs; clamped to the CPU "
                             "count); results are bit-identical to the "
                             "serial run")
    table1.add_argument("--backend", default=None, metavar="NAME",
                        help="estimator backend (default bitsim; see "
                             "'repro libraries' for the registered set)")
    table1.set_defaults(func=_cmd_table1)

    library = sub.add_parser("library",
                             help="Section 4 gate-level study")
    library.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all CPUs)")
    library.set_defaults(func=_cmd_library)

    figures = sub.add_parser("figures", help="Fig. 2/4/5 demonstrations")
    figures.set_defaults(func=_cmd_figures)

    genlib = sub.add_parser("genlib", help="export a library as genlib")
    genlib.add_argument("library", metavar="LIBRARY",
                        help="registered library key or alias "
                             "(see 'repro libraries')")
    genlib.add_argument("-o", "--output", default=None)
    genlib.set_defaults(func=_cmd_genlib)

    cell = sub.add_parser("cell", help="per-vector leakage of one cell")
    cell.add_argument("name")
    cell.add_argument("--library", default="generalized",
                      help="registered library key or alias")
    cell.set_defaults(func=_cmd_cell)

    libraries = sub.add_parser(
        "libraries", help="registered libraries and estimator backends")
    libraries.add_argument("-v", "--verbose", action="store_true",
                           help="build each library and show cell counts")
    libraries.set_defaults(func=_cmd_libraries)

    circuits = sub.add_parser(
        "circuits", help="registered circuits (benchmarks + user netlists)")
    circuits.add_argument("-v", "--verbose", action="store_true",
                          help="build each circuit and show its size")
    circuits.add_argument("--blif", action="append", default=None,
                          metavar="FILE",
                          help="register a BLIF netlist first (repeatable)")
    circuits.set_defaults(func=_cmd_circuits)

    techs = sub.add_parser("techs", help="technology summaries")
    techs.set_defaults(func=_cmd_techs)

    serve = sub.add_parser(
        "serve", help="long-lived estimation server (POST /v1/estimate)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port; 0 binds a free one (printed on "
                            "startup)")
    serve.add_argument("--store", default=None, metavar="FILE",
                       help="sweep-format result store to warm-start "
                            "from and append every computed answer to")
    serve.add_argument("--blif", action="append", default=None,
                       metavar="FILE",
                       help="register a BLIF netlist before serving "
                            "(repeatable)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       metavar="N", dest="max_inflight",
                       help="admission limit: estimate requests "
                            "processed at once before shedding with "
                            "429 (0 = unbounded; default %(default)s)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S", dest="drain_timeout",
                       help="seconds SIGTERM/SIGINT waits for in-flight "
                            "requests before forcing shutdown "
                            "(default %(default)s)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes sharing the service port "
                            "(N>1 runs the self-healing fleet "
                            "supervisor; default %(default)s)")
    serve.add_argument("--control-port", type=int, default=None,
                       metavar="PORT", dest="control_port",
                       help="fleet supervisor health port serving the "
                            "aggregated /v1/healthz (default: service "
                            "port + 1, or OS-assigned with --port 0; "
                            "only with --workers > 1)")
    _add_config_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="inspect a running multi-worker serving fleet")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fstatus = fleet_sub.add_parser(
        "status",
        help="per-worker liveness and fleet-wide counters from the "
             "supervisor's aggregated /v1/healthz (exit 1 when "
             "degraded)")
    fstatus.add_argument("--url", default="http://127.0.0.1:8322",
                         help="supervisor control URL (default "
                              "%(default)s — service port + 1)")
    fstatus.add_argument("--timeout", type=float, default=10.0,
                         metavar="S", help="HTTP timeout in seconds")
    fstatus.add_argument("--json", action="store_true",
                         help="print the raw aggregated healthz JSON")
    fstatus.set_defaults(func=_cmd_fleet_status)

    query = sub.add_parser(
        "query", help="one power query against a running server")
    query.add_argument("circuit", help="registered circuit name or alias")
    query.add_argument("library", help="registered library key or alias")
    query.add_argument("--url", default="http://127.0.0.1:8321",
                       help="server base URL (default %(default)s)")
    query.add_argument("--timeout", type=float, default=600.0,
                       metavar="S",
                       help="per-attempt request timeout in seconds")
    query.add_argument("--retries", type=int, default=2, metavar="N",
                       help="re-attempts on connection failures and "
                            "429/503 shedding, with jittered "
                            "exponential backoff (0 disables; "
                            "default %(default)s)")
    query.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS", dest="deadline_ms",
                       help="server-side deadline per query; an "
                            "estimate that cannot finish in time "
                            "fails fast with 504 instead of hogging "
                            "the server")
    query.add_argument("--json", action="store_true",
                       help="print the raw PowerQuoteReport JSON")
    query.add_argument("--grid", action="append", default=None,
                       metavar="AXIS=V1,V2[,AXIS=...]",
                       help="sweep the pricing axes (vdd, frequency, "
                            "fanout) in one batched request, e.g. "
                            "--grid vdd=0.8,0.9,frequency=1e9,2e9; the "
                            "server prices the whole grid off one "
                            "cached simulation (repeatable)")
    _add_config_flags(query)
    query.set_defaults(func=_cmd_query)

    optimize = sub.add_parser(
        "optimize",
        help="Pareto frontier of one circuit over a "
             "(library x vdd x frequency) design space")
    optimize.add_argument("circuit",
                          help="registered circuit name or alias")
    optimize.add_argument("--libraries", default=None,
                          metavar="L1,L2,...",
                          help="library axis (default: the paper's "
                               "three)")
    optimize.add_argument("--vdd", default=None, metavar="V1,V2,...",
                          help="supply-voltage axis in volts "
                               "(default 0.9)")
    optimize.add_argument("--frequency", default=None,
                          metavar="F1,F2,...",
                          help="clock-frequency axis in Hz "
                               "(default 1e9); points whose period is "
                               "shorter than the critical path are "
                               "pruned before pricing")
    optimize.add_argument("--backend", default=None, metavar="B1,B2,...",
                          help="estimator-backend axis (default bitsim)")
    optimize.add_argument("--objectives", default=None,
                          metavar="O1,O2,...",
                          help="Pareto objectives: power, energy, pdp, "
                               "edp, delay, vdd, frequency, fmax "
                               "(default power,frequency)")
    optimize.add_argument("--fast", action="store_true",
                          help="16K patterns instead of 640K")
    optimize.add_argument("--fanout", type=int, default=None, metavar="N")
    optimize.add_argument("--patterns", type=int, default=None,
                          metavar="N", help="random patterns per point")
    optimize.add_argument("--state-patterns", type=int, default=None,
                          metavar="N",
                          help="short-circuit state sample size")
    optimize.add_argument("--seed", type=int, default=None)
    optimize.add_argument("--sim-kernel", default=None, metavar="NAME",
                          help="bitsim kernel (auto/levelized/python)")
    optimize.add_argument("--url", default=None, metavar="URL",
                          help="evaluate on a running 'repro serve' "
                               "endpoint instead of in-process")
    optimize.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="per-attempt HTTP timeout (with --url)")
    optimize.add_argument("--retries", type=int, default=2, metavar="N",
                          help="HTTP retry budget for transient "
                               "failures (with --url; 0 disables)")
    optimize.add_argument("--deadline-ms", type=float, default=None,
                          metavar="MS",
                          help="bound the whole optimization; expiry "
                               "is a deadline_exceeded error")
    optimize.add_argument("--store", default=None, metavar="FILE",
                          help="JSONL result store to warm-start from "
                               "and record priced points into "
                               "(local mode)")
    optimize.add_argument("--format", default="table",
                          choices=["table", "csv", "json"],
                          help="frontier rendering (default table)")
    optimize.add_argument("--blif", action="append", default=None,
                          metavar="FILE",
                          help="register a BLIF netlist as a circuit "
                               "first (repeatable, local mode)")
    optimize.set_defaults(func=_cmd_optimize)

    foundry = sub.add_parser(
        "foundry",
        help="build, inspect and verify prebuilt library artifacts")
    foundry_sub = foundry.add_subparsers(dest="foundry_command",
                                         required=True)

    def _foundry_common(sub_parser, with_vdd=True):
        sub_parser.add_argument("--libraries", default=None,
                                metavar="L1,L2,...",
                                help="library keys/aliases (default: "
                                     "every registered library)")
        if with_vdd:
            sub_parser.add_argument("--vdd", default=None,
                                    metavar="V1,V2,...",
                                    help="supply points in volts "
                                         "(default: native supply)")
        sub_parser.add_argument("--cache-dir", default=None,
                                metavar="DIR", dest="cache_dir",
                                help="artifact store root (default: the "
                                     "REPRO_CACHE_DIR cache)")

    fbuild = foundry_sub.add_parser(
        "build", help="characterize libraries into versioned artifacts")
    _foundry_common(fbuild)
    fbuild.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all CPUs); every "
                             "saved artifact is a resume checkpoint")
    fbuild.add_argument("--force", action="store_true",
                        help="rebuild even when a valid artifact exists")
    fbuild.set_defaults(func=_cmd_foundry_build)

    flist = foundry_sub.add_parser(
        "list", help="stored artifacts with provenance per library")
    flist.add_argument("--cache-dir", default=None, metavar="DIR",
                       dest="cache_dir",
                       help="artifact store root (default: the "
                            "REPRO_CACHE_DIR cache)")
    flist.set_defaults(func=_cmd_foundry_list)

    fverify = foundry_sub.add_parser(
        "verify",
        help="re-characterize from scratch and diff against stored "
             "hashes; defaults to every stored artifact (exit 1 on "
             "any mismatch)")
    _foundry_common(fverify)
    fverify.set_defaults(func=_cmd_foundry_verify)

    fexport = foundry_sub.add_parser(
        "export",
        help="copy artifacts into a standalone store directory "
             "(usable as REPRO_CACHE_DIR)")
    fexport.add_argument("target", metavar="DIR")
    _foundry_common(fexport)
    fexport.set_defaults(func=_cmd_foundry_export)

    sweep = sub.add_parser(
        "sweep", help="scenario grids with a resumable result store")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    run = sweep_sub.add_parser(
        "run", help="execute every not-yet-stored point of a grid")
    _add_axis_flags(run)
    run.add_argument("--store", default="sweep-results.jsonl",
                     metavar="FILE",
                     help="result store path; .sqlite/.db selects the "
                          "SQLite backend (default sweep-results.jsonl)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (0 = all CPUs; clamped to "
                          "the CPU count); results are bit-identical "
                          "for any value")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress lines")
    run.set_defaults(func=_cmd_sweep_run)

    report = sweep_sub.add_parser(
        "report", help="pivot stored points into tables")
    report.add_argument("--store", default="sweep-results.jsonl",
                        metavar="FILE")
    report.add_argument("--pivot", choices=["table1", "vdd"],
                        default="table1",
                        help="table1: per-library tables per operating "
                             "point; vdd: power-vs-VDD series")
    report.add_argument("--format", choices=["markdown", "csv"],
                        default="markdown",
                        help="csv ignores --pivot and dumps every point")
    report.add_argument("-o", "--output", default=None, metavar="FILE")
    report.set_defaults(func=_cmd_sweep_report)

    status = sweep_sub.add_parser(
        "status", help="grid coverage of a store (exit 1 if incomplete)")
    _add_axis_flags(status)
    status.add_argument("--store", default="sweep-results.jsonl",
                        metavar="FILE")
    status.set_defaults(func=_cmd_sweep_status)

    spec = sweep_sub.add_parser(
        "spec", help="emit the JSON spec the axis flags describe")
    _add_axis_flags(spec)
    spec.add_argument("-o", "--output", default=None, metavar="FILE")
    spec.set_defaults(func=_cmd_sweep_spec)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
