"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment harnesses so the reproduction can be
driven without writing Python:

* ``table1 [--fast] [--benchmarks A,B,...]`` — the Table 1 experiment;
* ``library`` — the Section 4 gate-level study;
* ``figures`` — Fig. 2 / Fig. 4 / Fig. 5 demonstrations;
* ``genlib <generalized|conventional|cmos> [-o FILE]`` — export a
  characterized library in genlib format;
* ``cell <NAME>`` — per-vector leakage report of one library cell;
* ``techs`` — the calibrated technology summaries.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devices import CMOS_32NM, CNTFET_32NM, technology_report


def _cmd_table1(args) -> int:
    from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
    from repro.experiments.table1 import reproduce_table1

    config = PAPER_CONFIG
    if args.fast:
        config = ExperimentConfig(n_patterns=16_384, state_patterns=16_384)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    result = reproduce_table1(config, benchmarks=benchmarks,
                              verbose=not args.quiet, jobs=args.jobs)
    print(result.render())
    return 0


def _cmd_library(args) -> int:
    from repro.experiments.library_power import reproduce_library_study

    study = reproduce_library_study(jobs=args.jobs)
    print(study.render())
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments.figures import (
        reproduce_fig2_transmission,
        reproduce_fig4_patterns,
        reproduce_fig5_flow,
    )

    print(reproduce_fig2_transmission().render())
    print()
    print(reproduce_fig4_patterns().render())
    print()
    print(reproduce_fig5_flow().render())
    return 0


def _library_by_key(key: str):
    from repro.experiments.flow import three_libraries

    libraries = three_libraries()
    aliases = {
        "generalized": "cntfet-generalized",
        "conventional": "cntfet-conventional",
        "cmos": "cmos",
    }
    name = aliases.get(key, key)
    if name not in libraries:
        raise SystemExit(f"unknown library {key!r}; choose from "
                         f"{sorted(aliases)}")
    return libraries[name]


def _cmd_genlib(args) -> int:
    from repro.gates.genlib import write_genlib

    library = _library_by_key(args.library)
    text = write_genlib(library)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(library)} cells)")
    else:
        print(text, end="")
    return 0


def _cmd_cell(args) -> int:
    from repro.power.vector_report import cell_leakage_report

    library = _library_by_key(args.library)
    cell = library.cell(args.name)
    print(f"{cell.name}: {cell.description}  "
          f"(pins {', '.join(cell.inputs)}, {cell.n_devices} devices)")
    print(cell_leakage_report(cell, library).render())
    return 0


def _cmd_techs(args) -> int:
    print(technology_report(CMOS_32NM))
    print(technology_report(CNTFET_32NM))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Power Consumption of Logic Circuits "
                    "in Ambipolar Carbon Nanotube Technology' (DATE 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--fast", action="store_true",
                        help="16K patterns instead of 640K")
    table1.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    table1.add_argument("--quiet", action="store_true")
    table1.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the circuit x library "
                             "grid (0 = all CPUs); results are "
                             "bit-identical to the serial run")
    table1.set_defaults(func=_cmd_table1)

    library = sub.add_parser("library",
                             help="Section 4 gate-level study")
    library.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all CPUs)")
    library.set_defaults(func=_cmd_library)

    figures = sub.add_parser("figures", help="Fig. 2/4/5 demonstrations")
    figures.set_defaults(func=_cmd_figures)

    genlib = sub.add_parser("genlib", help="export a library as genlib")
    genlib.add_argument("library",
                        choices=["generalized", "conventional", "cmos"])
    genlib.add_argument("-o", "--output", default=None)
    genlib.set_defaults(func=_cmd_genlib)

    cell = sub.add_parser("cell", help="per-vector leakage of one cell")
    cell.add_argument("name")
    cell.add_argument("--library", default="generalized")
    cell.set_defaults(func=_cmd_cell)

    techs = sub.add_parser("techs", help="technology summaries")
    techs.set_defaults(func=_cmd_techs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
