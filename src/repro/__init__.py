"""repro — reproduction of *Power Consumption of Logic Circuits in
Ambipolar Carbon Nanotube Technology* (Ben Jamaa, Mohanram, De Micheli;
DATE 2010).

The package is organized as the paper's stack:

* :mod:`repro.devices` — calibrated 32 nm CMOS / CNTFET compact models
  and the ambipolar device of Fig. 1;
* :mod:`repro.spice`   — a small MNA circuit simulator (the HSPICE
  substitute);
* :mod:`repro.gates`   — switch-network cells and the three libraries
  (46-cell generalized ambipolar, conventional CNTFET, CMOS);
* :mod:`repro.power`   — the power model (Eqs. 1-5) and the off-current
  pattern classification flow of Fig. 5;
* :mod:`repro.synth`   — AIG synthesis (resyn2rs) and technology
  mapping (the ABC substitute);
* :mod:`repro.sim`     — bit-parallel gate-level simulation and circuit
  power estimation (640 K random patterns);
* :mod:`repro.circuits` — generators for the 12 Table 1 benchmarks;
* :mod:`repro.experiments` — harnesses regenerating every table/figure.

Quickstart::

    from repro.api import Session
    print(Session().table1().render())

:mod:`repro.api` (the :class:`~repro.api.Session` facade),
:mod:`repro.registry` (named library factories) and
:mod:`repro.sim.backends` (pluggable estimators) are the public front
door; they are imported lazily here so ``import repro`` stays light.
"""

from repro import devices, errors, units

#: Distribution name in package metadata (pyproject.toml).
_DIST_NAME = "repro-ambipolar-cntfet-power"


def _detect_version() -> str:
    """Single-source the version from package metadata.

    Installed (``pip install -e .`` included) the metadata is
    authoritative; on a bare ``PYTHONPATH=src`` checkout it falls back
    to reading pyproject.toml next to the package, so there is exactly
    one place the number is written.
    """
    from importlib import metadata

    try:
        return metadata.version(_DIST_NAME)
    except metadata.PackageNotFoundError:
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(r'^version\s*=\s*"([^"]+)"',
                          pyproject.read_text(encoding="utf-8"),
                          re.MULTILINE)
    except OSError:
        match = None
    return f"{match.group(1)}+src" if match else "0+unknown"


__version__ = _detect_version()

__all__ = ["devices", "errors", "units", "api", "registry", "Session",
           "__version__"]


def __getattr__(name):
    """Lazy access to the heavier front-door modules (PEP 562)."""
    if name in ("api", "registry"):
        import importlib
        return importlib.import_module(f"repro.{name}")
    if name == "Session":
        from repro.api import Session
        return Session
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
