"""A small SPICE-like circuit simulator.

This is the reproduction's substitute for HSPICE: a modified-nodal-
analysis (MNA) engine with a Newton-Raphson DC operating-point solver
(gmin and source stepping for robustness) and a trapezoidal transient
integrator.  It supports resistors, capacitors, independent sources,
unipolar MOSFET/CNTFET devices using the compact model of
:mod:`repro.devices.model`, and ambipolar CNTFETs via the behavioural
parallel-pair model of :mod:`repro.devices.ambipolar`.

The paper's flow (Fig. 5) only needs DC leakage of small off-transistor
stacks plus a handful of demonstration transients (Fig. 2), so the
engine favours robustness and clarity over speed.
"""

from repro.spice.netlist import (
    Circuit,
    GROUND,
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Mosfet,
    AmbipolarFet,
)
from repro.spice.dc import DCSolution, operating_point, dc_sweep
from repro.spice.transient import TransientResult, transient
from repro.spice.analysis import (
    pulse,
    piecewise_linear,
    crossing_time,
    measure_swing,
)

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
    "AmbipolarFet",
    "DCSolution",
    "operating_point",
    "dc_sweep",
    "TransientResult",
    "transient",
    "pulse",
    "piecewise_linear",
    "crossing_time",
    "measure_swing",
]
