"""Source waveform builders and measurement helpers."""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def pulse(v_initial: float, v_pulse: float, delay: float, rise: float,
          width: float, fall: float = None,
          period: float = None) -> Callable[[float], float]:
    """SPICE-style pulse source.

    Args:
        v_initial: level before the pulse.
        v_pulse: level during the pulse.
        delay: time of the rising edge start.
        rise: rise time.
        width: time spent at ``v_pulse``.
        fall: fall time (defaults to ``rise``).
        period: repetition period (defaults to no repetition).
    """
    fall_time = rise if fall is None else fall

    def waveform(t: float) -> float:
        if period is not None and period > 0.0 and t >= delay:
            t = delay + (t - delay) % period
        if t < delay:
            return v_initial
        t -= delay
        if t < rise:
            return v_initial + (v_pulse - v_initial) * t / rise
        t -= rise
        if t < width:
            return v_pulse
        t -= width
        if t < fall_time:
            return v_pulse + (v_initial - v_pulse) * t / fall_time
        return v_initial

    return waveform


def piecewise_linear(
        points: Sequence[Tuple[float, float]]) -> Callable[[float], float]:
    """Piecewise-linear source through the given (time, value) points."""
    if not points:
        raise SimulationError("piecewise_linear needs at least one point")
    pts = sorted(points)
    times = np.array([p[0] for p in pts])
    values = np.array([p[1] for p in pts])

    def waveform(t: float) -> float:
        return float(np.interp(t, times, values))

    return waveform


def crossing_time(times: np.ndarray, values: np.ndarray, threshold: float,
                  rising: bool = True, start: float = 0.0) -> float:
    """First time ``values`` crosses ``threshold`` in the given direction.

    Linearly interpolates between samples.  Raises
    :class:`SimulationError` if no crossing is found.
    """
    times = np.asarray(times)
    values = np.asarray(values)
    for k in range(1, len(times)):
        if times[k] < start:
            continue
        before, after = values[k - 1], values[k]
        crosses_up = rising and before < threshold <= after
        crosses_down = (not rising) and before > threshold >= after
        if crosses_up or crosses_down:
            span = after - before
            frac = 0.5 if span == 0 else (threshold - before) / span
            return float(times[k - 1] + frac * (times[k] - times[k - 1]))
    direction = "rising" if rising else "falling"
    raise SimulationError(
        f"no {direction} crossing of {threshold} after t={start}")


def measure_swing(values: np.ndarray) -> float:
    """Peak-to-peak swing of a waveform."""
    values = np.asarray(values)
    return float(values.max() - values.min())
