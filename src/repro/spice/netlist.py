"""Circuit netlist representation for the MNA engine.

A :class:`Circuit` is a bag of named nodes and elements.  Node ``"0"``
(alias ``"gnd"``) is ground.  Element values may be plain floats or, for
independent sources, callables of time (used by the transient engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Union

from repro.devices.ambipolar import AmbipolarCNTFET
from repro.devices.parameters import DeviceParams
from repro.errors import NetlistError

#: Canonical name of the ground node.
GROUND = "0"

SourceValue = Union[float, Callable[[float], float]]


def _evaluate_source(value: SourceValue, time: float) -> float:
    """Evaluate a source value, which may be constant or time-dependent."""
    if callable(value):
        return float(value(time))
    return float(value)


@dataclass
class Resistor:
    """Linear resistor between two nodes."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise NetlistError(f"resistor {self.name}: resistance must be > 0")


@dataclass
class Capacitor:
    """Linear capacitor between two nodes (transient only; open at DC)."""

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise NetlistError(f"capacitor {self.name}: capacitance must be > 0")


@dataclass
class VoltageSource:
    """Independent voltage source from ``node_pos`` to ``node_neg``."""

    name: str
    node_pos: str
    node_neg: str
    value: SourceValue

    def voltage(self, time: float = 0.0) -> float:
        """Source voltage at ``time`` (constant sources ignore time)."""
        return _evaluate_source(self.value, time)


@dataclass
class CurrentSource:
    """Independent current source pushing current node_pos -> node_neg."""

    name: str
    node_pos: str
    node_neg: str
    value: SourceValue

    def current(self, time: float = 0.0) -> float:
        """Source current at ``time`` (constant sources ignore time)."""
        return _evaluate_source(self.value, time)


@dataclass
class Mosfet:
    """Unipolar MOSFET/CNTFET with fixed polarity.

    Terminal order is drain, gate, source; the bulk is implicit in the
    compact model.  ``params.polarity`` decides n/p behaviour.
    """

    name: str
    drain: str
    gate: str
    source: str
    params: DeviceParams


@dataclass
class AmbipolarFet:
    """Ambipolar CNTFET with an explicit polarity-gate terminal (Fig. 1).

    Modelled as the behavioural parallel n/p pair of
    :class:`repro.devices.ambipolar.AmbipolarCNTFET`.
    """

    name: str
    drain: str
    gate: str
    polarity_gate: str
    source: str
    device: AmbipolarCNTFET
    vdd: float


Element = Union[Resistor, Capacitor, VoltageSource, CurrentSource,
                Mosfet, AmbipolarFet]


@dataclass
class Circuit:
    """A flat circuit netlist.

    Example::

        ckt = Circuit("inverter")
        ckt.add_vsource("vdd", "vdd", GROUND, 0.9)
        ckt.add_vsource("vin", "in", GROUND, 0.0)
        ckt.add_mosfet("mp", "out", "in", "vdd", tech.pmos)
        ckt.add_mosfet("mn", "out", "in", GROUND, tech.nmos)
        solution = operating_point(ckt)
    """

    title: str = "untitled"
    elements: List[Element] = field(default_factory=list)
    _names: Dict[str, Element] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------

    def _register(self, element: Element) -> Element:
        if element.name in self._names:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._names[element.name] = element
        self.elements.append(element)
        return element

    def add_resistor(self, name: str, node_a: str, node_b: str,
                     resistance: float) -> Resistor:
        """Add a resistor and return it."""
        return self._register(Resistor(name, node_a, node_b, resistance))

    def add_capacitor(self, name: str, node_a: str, node_b: str,
                      capacitance: float) -> Capacitor:
        """Add a capacitor and return it."""
        return self._register(Capacitor(name, node_a, node_b, capacitance))

    def add_vsource(self, name: str, node_pos: str, node_neg: str,
                    value: SourceValue) -> VoltageSource:
        """Add an independent voltage source and return it."""
        return self._register(VoltageSource(name, node_pos, node_neg, value))

    def add_isource(self, name: str, node_pos: str, node_neg: str,
                    value: SourceValue) -> CurrentSource:
        """Add an independent current source and return it."""
        return self._register(CurrentSource(name, node_pos, node_neg, value))

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   params: DeviceParams) -> Mosfet:
        """Add a unipolar transistor and return it."""
        return self._register(Mosfet(name, drain, gate, source, params))

    def add_ambipolar(self, name: str, drain: str, gate: str,
                      polarity_gate: str, source: str,
                      device: AmbipolarCNTFET, vdd: float) -> AmbipolarFet:
        """Add an in-field programmable ambipolar CNTFET and return it."""
        return self._register(
            AmbipolarFet(name, drain, gate, polarity_gate, source, device, vdd))

    # -- queries ---------------------------------------------------------

    def element(self, name: str) -> Element:
        """Look an element up by name."""
        try:
            return self._names[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def node_names(self) -> List[str]:
        """All node names referenced by the circuit, ground excluded."""
        seen: Dict[str, None] = {}
        for element in self.elements:
            for node in _element_nodes(element):
                if node not in (GROUND, "gnd") and node not in seen:
                    seen[node] = None
        return list(seen)

    def voltage_sources(self) -> List[VoltageSource]:
        """All independent voltage sources, in insertion order."""
        return [e for e in self.elements if isinstance(e, VoltageSource)]


def _element_nodes(element: Element) -> List[str]:
    """Terminal node names of an element."""
    if isinstance(element, (Resistor, Capacitor)):
        return [element.node_a, element.node_b]
    if isinstance(element, (VoltageSource, CurrentSource)):
        return [element.node_pos, element.node_neg]
    if isinstance(element, Mosfet):
        return [element.drain, element.gate, element.source]
    if isinstance(element, AmbipolarFet):
        return [element.drain, element.gate, element.polarity_gate,
                element.source]
    raise NetlistError(f"unknown element type {type(element).__name__}")


def canonical_node(name: str) -> str:
    """Normalize ground aliases to :data:`GROUND`."""
    return GROUND if name in (GROUND, "gnd", "GND", "vss", "VSS") else name
