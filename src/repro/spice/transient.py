"""Fixed-step trapezoidal transient analysis.

Capacitors are replaced by their trapezoidal companion model at each
timestep::

    i_C(t+h) = (2C/h) * (v(t+h) - v(t)) - i_C(t)

which stamps as a conductance ``2C/h`` in parallel with a history
current source.  Every timestep is solved with the same Newton iteration
as the DC analysis, warm-started from the previous solution, so the
integrator inherits the DC solver's robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConvergenceError, SimulationError
from repro.spice.dc import _System, _newton
from repro.spice.netlist import Capacitor, Circuit, GROUND, canonical_node


@dataclass
class TransientResult:
    """Waveforms from a transient run."""

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node`` (ground returns zeros)."""
        node = canonical_node(node)
        if node == GROUND:
            return np.zeros_like(self.times)
        try:
            return self.node_voltages[node]
        except KeyError:
            raise SimulationError(f"unknown node {node!r}") from None

    def final_voltage(self, node: str) -> float:
        """Last sample of the node's waveform."""
        return float(self.voltage(node)[-1])


class _TransientSystem(_System):
    """MNA system with capacitor companion stamps added."""

    def __init__(self, circuit: Circuit, step: float):
        super().__init__(circuit)
        self.step = step
        self.capacitors = [e for e in circuit.elements
                           if isinstance(e, Capacitor)]
        # History: previous voltage across and current through each cap.
        self.cap_voltage = np.zeros(len(self.capacitors))
        self.cap_current = np.zeros(len(self.capacitors))

    def residual_and_jacobian(self, x, gmin, source_scale, time=0.0,
                              want_jacobian=True):
        f, jac = super().residual_and_jacobian(
            x, gmin, source_scale, time, want_jacobian)
        two_over_h = 2.0 / self.step
        for k, cap in enumerate(self.capacitors):
            a, b = self.index(cap.node_a), self.index(cap.node_b)
            va = 0.0 if a < 0 else x[a]
            vb = 0.0 if b < 0 else x[b]
            g_eq = two_over_h * cap.capacitance
            i_eq = g_eq * (va - vb - self.cap_voltage[k]) - self.cap_current[k]
            if a >= 0:
                f[a] += i_eq
                if jac is not None:
                    jac[a, a] += g_eq
                    if b >= 0:
                        jac[a, b] -= g_eq
            if b >= 0:
                f[b] -= i_eq
                if jac is not None:
                    jac[b, b] += g_eq
                    if a >= 0:
                        jac[b, a] -= g_eq
        return f, jac

    def commit_step(self, x) -> None:
        """Record capacitor history after a converged timestep."""
        two_over_h = 2.0 / self.step
        for k, cap in enumerate(self.capacitors):
            a, b = self.index(cap.node_a), self.index(cap.node_b)
            va = 0.0 if a < 0 else x[a]
            vb = 0.0 if b < 0 else x[b]
            v_new = va - vb
            g_eq = two_over_h * cap.capacitance
            self.cap_current[k] = (g_eq * (v_new - self.cap_voltage[k])
                                   - self.cap_current[k])
            self.cap_voltage[k] = v_new


def transient(circuit: Circuit, stop_time: float, step: float,
              initial: Optional[Dict[str, float]] = None) -> TransientResult:
    """Run a transient analysis from 0 to ``stop_time``.

    Args:
        circuit: the netlist (time-dependent sources are callables of t).
        stop_time: end of the simulation window (s).
        step: fixed integration timestep (s).
        initial: optional initial node voltages.  If omitted, the DC
            operating point at t = 0 is used.

    Returns:
        A :class:`TransientResult` with one sample per timestep
        (including t = 0).
    """
    if step <= 0.0 or stop_time <= 0.0:
        raise SimulationError("step and stop_time must be positive")
    system = _TransientSystem(circuit, step)

    # Initial condition: user-provided or DC at t=0.
    x = np.zeros(system.n_vars)
    if initial is None:
        from repro.spice.dc import operating_point
        dc = operating_point(circuit, time=0.0)
        for node, idx in system.node_index.items():
            x[idx] = dc.node_voltages[node]
        for name, row in system.source_row.items():
            x[row] = dc.branch_currents[name]
    else:
        for node, voltage in initial.items():
            idx = system.index(node)
            if idx >= 0:
                x[idx] = voltage
    # Seed capacitor history with the initial voltages.
    for k, cap in enumerate(system.capacitors):
        a, b = system.index(cap.node_a), system.index(cap.node_b)
        va = 0.0 if a < 0 else x[a]
        vb = 0.0 if b < 0 else x[b]
        system.cap_voltage[k] = va - vb
        system.cap_current[k] = 0.0

    n_steps = int(round(stop_time / step))
    times = np.linspace(0.0, n_steps * step, n_steps + 1)
    history = np.zeros((n_steps + 1, system.n_vars))
    history[0] = x
    for k in range(1, n_steps + 1):
        t = times[k]
        try:
            x, _, _ = _newton(system, x, 0.0, 1.0, t)
        except ConvergenceError:
            # retry from a gmin-relaxed solve before giving up
            x, _, _ = _newton(system, x, 1e-9, 1.0, t)
        system.commit_step(x)
        history[k] = x

    node_waves = {node: history[:, idx]
                  for node, idx in system.node_index.items()}
    branch_waves = {name: history[:, row]
                    for name, row in system.source_row.items()}
    return TransientResult(times, node_waves, branch_waves)
