"""Newton-Raphson DC operating-point solver (MNA formulation).

Unknowns are the non-ground node voltages plus one branch current per
independent voltage source.  The residual is Kirchhoff's current law at
every node (sum of currents *leaving* the node) plus the source branch
constraints.  Nonlinear devices contribute numerically-differentiated
Jacobian entries, which keeps the stamps trivially consistent with the
compact model.

Robustness ladder: plain Newton from the supplied guess, then gmin
stepping (a shunt conductance from every transistor terminal to ground,
relaxed from 1e-3 S down to nothing), then source stepping.  The tiny
circuits in this project (gate leakage stacks, transmission gates,
inverter chains) converge in the first or second rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError, NetlistError
from repro.spice.netlist import (
    AmbipolarFet,
    Capacitor,
    Circuit,
    CurrentSource,
    GROUND,
    Mosfet,
    Resistor,
    VoltageSource,
    canonical_node,
)
from repro.devices.model import drain_current

#: Absolute current tolerance for convergence (A).
ABSTOL = 1e-13
#: Voltage update tolerance for convergence (V).
VNTOL = 1e-9
#: Maximum Newton iterations per solve attempt.
MAX_ITERATIONS = 200
#: Maximum voltage update per Newton step (V) — damping.
MAX_STEP = 0.5
#: Shunt conductance always present on device terminals (S); keeps the
#: Jacobian non-singular for floating internal nodes of off stacks.
GMIN_FLOOR = 1e-15
#: Perturbation for numeric device derivatives (V).
DELTA = 1e-6


@dataclass
class DCSolution:
    """Result of a DC operating-point analysis."""

    node_voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    iterations: int
    residual: float

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` (ground returns 0.0)."""
        node = canonical_node(node)
        if node == GROUND:
            return 0.0
        try:
            return self.node_voltages[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> float:
        """Current through voltage source ``name`` (pos -> neg inside)."""
        try:
            return self.branch_currents[name]
        except KeyError:
            raise NetlistError(f"no voltage source named {name!r}") from None


class _System:
    """Index bookkeeping + residual/Jacobian assembly for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_index: Dict[str, int] = {}
        for element in circuit.elements:
            for node in _terminals(element):
                node = canonical_node(node)
                if node != GROUND and node not in self.node_index:
                    self.node_index[node] = len(self.node_index)
        self.n_nodes = len(self.node_index)
        self.sources = circuit.voltage_sources()
        self.n_vars = self.n_nodes + len(self.sources)
        self.source_row = {
            src.name: self.n_nodes + k for k, src in enumerate(self.sources)}

    def index(self, node: str) -> int:
        """MNA index of a node, or -1 for ground."""
        node = canonical_node(node)
        return -1 if node == GROUND else self.node_index[node]

    def voltage_of(self, x: np.ndarray, node: str) -> float:
        idx = self.index(node)
        return 0.0 if idx < 0 else float(x[idx])

    def _device_current(self, element, x: np.ndarray) -> float:
        """Drain current of a transistor element at state ``x``."""
        vd = self.voltage_of(x, element.drain)
        vg = self.voltage_of(x, element.gate)
        vs = self.voltage_of(x, element.source)
        if isinstance(element, Mosfet):
            return drain_current(element.params, vg - vs, vd - vs)
        vpg = self.voltage_of(x, element.polarity_gate)
        return element.device.drain_current(vg, vpg, vd, vs, element.vdd)

    def residual_and_jacobian(
        self,
        x: np.ndarray,
        gmin: float,
        source_scale: float,
        time: float = 0.0,
        want_jacobian: bool = True,
    ):
        """Assemble f(x) and (optionally) J(x) at the given state."""
        n = self.n_vars
        f = np.zeros(n)
        jac = np.zeros((n, n)) if want_jacobian else None

        def add_f(idx: int, value: float) -> None:
            if idx >= 0:
                f[idx] += value

        def add_j(row: int, col: int, value: float) -> None:
            if jac is not None and row >= 0 and col >= 0:
                jac[row, col] += value

        shunt = gmin + GMIN_FLOOR
        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                a, b = self.index(element.node_a), self.index(element.node_b)
                g = 1.0 / element.resistance
                va = 0.0 if a < 0 else x[a]
                vb = 0.0 if b < 0 else x[b]
                current = g * (va - vb)
                add_f(a, current)
                add_f(b, -current)
                add_j(a, a, g)
                add_j(a, b, -g)
                add_j(b, a, -g)
                add_j(b, b, g)
            elif isinstance(element, Capacitor):
                continue  # open at DC
            elif isinstance(element, CurrentSource):
                value = element.current(time) * source_scale
                add_f(self.index(element.node_pos), value)
                add_f(self.index(element.node_neg), -value)
            elif isinstance(element, VoltageSource):
                row = self.source_row[element.name]
                p, m = self.index(element.node_pos), self.index(element.node_neg)
                branch = x[row]
                add_f(p, branch)
                add_f(m, -branch)
                add_j(p, row, 1.0)
                add_j(m, row, -1.0)
                vp = 0.0 if p < 0 else x[p]
                vm = 0.0 if m < 0 else x[m]
                f[row] = vp - vm - element.voltage(time) * source_scale
                add_j(row, p, 1.0)
                add_j(row, m, -1.0)
            elif isinstance(element, (Mosfet, AmbipolarFet)):
                d, s = self.index(element.drain), self.index(element.source)
                current = self._device_current(element, x)
                add_f(d, current)
                add_f(s, -current)
                # gmin shunts stabilize floating stacks.
                for idx in (d, s):
                    if idx >= 0:
                        f[idx] += shunt * x[idx]
                        add_j(idx, idx, shunt)
                if jac is not None:
                    terminals = [element.drain, element.gate, element.source]
                    if isinstance(element, AmbipolarFet):
                        terminals.append(element.polarity_gate)
                    for terminal in terminals:
                        col = self.index(terminal)
                        if col < 0:
                            continue
                        x[col] += DELTA
                        perturbed = self._device_current(element, x)
                        x[col] -= DELTA
                        didv = (perturbed - current) / DELTA
                        add_j(d, col, didv)
                        add_j(s, col, -didv)
            else:
                raise NetlistError(
                    f"unsupported element {type(element).__name__}")
        return f, jac


def _terminals(element) -> List[str]:
    if isinstance(element, (Resistor, Capacitor)):
        return [element.node_a, element.node_b]
    if isinstance(element, (VoltageSource, CurrentSource)):
        return [element.node_pos, element.node_neg]
    if isinstance(element, Mosfet):
        return [element.drain, element.gate, element.source]
    if isinstance(element, AmbipolarFet):
        return [element.drain, element.gate, element.polarity_gate,
                element.source]
    raise NetlistError(f"unknown element type {type(element).__name__}")


def _newton(system: _System, x0: np.ndarray, gmin: float,
            source_scale: float, time: float = 0.0):
    """One Newton solve; returns (x, iterations, residual) or raises."""
    x = x0.copy()
    residual = float("inf")
    for iteration in range(1, MAX_ITERATIONS + 1):
        f, jac = system.residual_and_jacobian(x, gmin, source_scale, time)
        residual = float(np.max(np.abs(f))) if len(f) else 0.0
        try:
            dx = np.linalg.solve(jac, -f) if len(f) else np.zeros(0)
        except np.linalg.LinAlgError:
            raise ConvergenceError("singular Jacobian", residual)
        step = float(np.max(np.abs(dx))) if len(dx) else 0.0
        if step > MAX_STEP:
            dx *= MAX_STEP / step
        x += dx
        if residual < ABSTOL and step < VNTOL:
            return x, iteration, residual
    raise ConvergenceError(
        f"Newton failed after {MAX_ITERATIONS} iterations", residual)


def _solve_robust(system: _System, x0: np.ndarray, time: float = 0.0):
    """Newton with gmin stepping, then source stepping as fallback."""
    try:
        return _newton(system, x0, 0.0, 1.0, time)
    except ConvergenceError:
        pass
    # gmin stepping
    x = x0.copy()
    try:
        for exponent in range(3, 13):
            x, _, _ = _newton(system, x, 10.0**-exponent, 1.0, time)
        return _newton(system, x, 0.0, 1.0, time)
    except ConvergenceError:
        pass
    # source stepping
    x = np.zeros_like(x0)
    total_iterations = 0
    for scale in np.linspace(0.1, 1.0, 10):
        x, iterations, residual = _newton(system, x, 0.0, float(scale), time)
        total_iterations += iterations
    return x, total_iterations, residual


def operating_point(circuit: Circuit,
                    guess: Optional[Dict[str, float]] = None,
                    time: float = 0.0) -> DCSolution:
    """Compute the DC operating point of ``circuit``.

    Args:
        circuit: the netlist to solve.
        guess: optional initial node voltages (defaults to 0 V everywhere).
        time: timepoint at which time-dependent sources are evaluated.

    Returns:
        A :class:`DCSolution` with node voltages and source branch currents.

    Raises:
        ConvergenceError: if all solver strategies fail.
    """
    system = _System(circuit)
    x0 = np.zeros(system.n_vars)
    if guess:
        for node, voltage in guess.items():
            idx = system.index(node)
            if idx >= 0:
                x0[idx] = voltage
    x, iterations, residual = _solve_robust(system, x0, time)
    voltages = {node: float(x[idx]) for node, idx in system.node_index.items()}
    currents = {src.name: float(x[system.source_row[src.name]])
                for src in system.sources}
    return DCSolution(voltages, currents, iterations, residual)


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float]) -> List[DCSolution]:
    """Sweep a voltage source over ``values``, reusing previous solutions.

    The named source's value is temporarily replaced; the circuit is
    restored afterwards.
    """
    source = circuit.element(source_name)
    if not isinstance(source, VoltageSource):
        raise NetlistError(f"{source_name!r} is not a voltage source")
    original = source.value
    solutions: List[DCSolution] = []
    guess: Optional[Dict[str, float]] = None
    try:
        for value in values:
            source.value = float(value)
            solution = operating_point(circuit, guess)
            solutions.append(solution)
            guess = solution.node_voltages
    finally:
        source.value = original
    return solutions
